package obs

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Metric names exported by the tracing layer.
const (
	// MetricTraces counts traces stored; MetricTraceDropped the ones the
	// sampler skipped (successful traces beyond the 1-in-SampleEvery rate).
	MetricTraces       = "obs.traces"
	MetricTraceDropped = "obs.traces_sampled_out"
	// MetricPredictedUS / MetricMeasuredUS are per-class gauges of the
	// Eq. 10/11 model makespan and the (EWMA-smoothed) measured execute
	// makespan; MetricDriftRatio is measured/predicted — the model-drift
	// signal online self-calibration will consume.
	MetricPredictedUS = "obs.predicted_us"
	MetricMeasuredUS  = "obs.measured_us"
	MetricDriftRatio  = "obs.drift_ratio"
	// MetricCritPathUS is the per-class EWMA of the realized critical-path
	// length (µs) — the scheduler-independent floor of the class.
	MetricCritPathUS = "obs.critpath_us"
	// MetricDeviceDriftRatio is the per-class, per-device measured-busy /
	// modelled-busy ratio (`obs.device_drift_ratio{class=…,dev=…}`).
	MetricDeviceDriftRatio = "obs.device_drift_ratio"
)

// ewmaAlpha is the smoothing factor of the drift report's measured figures:
// new = α·sample + (1−α)·old. 0.25 settles in a handful of jobs while
// riding out micro-batching noise.
const ewmaAlpha = 0.25

// DeviceDrift compares one modelled device's predicted busy time against
// the measured busy time of the worker standing in for it.
type DeviceDrift struct {
	// Dev is the modelled device name; Worker the runtime worker mapped to
	// it (position i of the plan's participant list ↔ worker-i).
	Dev    string `json:"dev"`
	Worker string `json:"worker"`
	// ModelUS is the device's predicted busy time over the whole
	// factorization (Eq. 10 summed over iterations); MeasuredUS the EWMA of
	// the worker's kernel time; Ratio is measured/model.
	ModelUS    float64 `json:"modelUS"`
	MeasuredUS float64 `json:"measuredUS"`
	Ratio      float64 `json:"ratio"`
}

// ClassDrift is the model-vs-measured record of one size class.
type ClassDrift struct {
	Class string `json:"class"`
	// Jobs is how many finished jobs have contributed samples.
	Jobs int64 `json:"jobs"`
	// PredictedUS is the scheduler's full-factorization makespan model
	// (Eq. 10 compute + Eq. 11 communication, summed over iterations, on
	// the modelled platform).
	PredictedUS float64 `json:"predictedUS"`
	// MeasuredUS is the EWMA of the measured execute-phase wall clock;
	// CritPathUS the EWMA of the realized critical-path length.
	MeasuredUS float64 `json:"measuredUS"`
	CritPathUS float64 `json:"critPathUS"`
	// DriftRatio is MeasuredUS / PredictedUS: 1.0 means the model still
	// describes reality; sustained drift is the replan/recalibrate signal.
	DriftRatio float64       `json:"driftRatio"`
	Devices    []DeviceDrift `json:"devices,omitempty"`
}

// TraceSummary is one row of the /traces listing.
type TraceSummary struct {
	ID         TraceID   `json:"id"`
	Class      string    `json:"class,omitempty"`
	Job        string    `json:"job,omitempty"`
	Start      time.Time `json:"start"`
	DurationUS float64   `json:"durationUS"`
	Spans      int       `json:"spans"`
	Err        string    `json:"err,omitempty"`
}

// Store is the sampled in-memory trace store plus the per-class drift
// ledger behind the /traces and /drift endpoints. Finished traces enter
// through Add (ring-buffer retention, 1-in-SampleEvery sampling with
// failures always kept); drift samples enter through RecordDrift.
type Store struct {
	cap    int
	sample int
	reg    *metrics.Registry

	mu    sync.Mutex
	seq   int64
	byID  map[TraceID]*Trace
	order []TraceID
	drift map[string]*ClassDrift
}

// NewStore builds a store retaining up to cap traces (default 256),
// keeping 1 in sampleEvery successful traces (default 1 = all; failed
// traces are always kept). reg, when non-nil, receives the obs.* metrics.
func NewStore(cap, sampleEvery int, reg *metrics.Registry) *Store {
	if cap <= 0 {
		cap = 256
	}
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	return &Store{
		cap: cap, sample: sampleEvery, reg: reg,
		byID:  map[TraceID]*Trace{},
		drift: map[string]*ClassDrift{},
	}
}

// Add offers a finished trace to the store. Unfinished traces are
// finalized defensively. Successful traces beyond the sampling rate are
// dropped (counted); failed traces always land. Nil stores ignore the call.
func (s *Store) Add(t *Trace) {
	if s == nil || t == nil {
		return
	}
	if !t.Finished() {
		t.Finish(nil)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	if t.Err() == "" && s.sample > 1 && s.seq%int64(s.sample) != 0 {
		s.reg.Counter(MetricTraceDropped).Inc()
		return
	}
	if _, dup := s.byID[t.ID]; !dup {
		s.order = append(s.order, t.ID)
	}
	s.byID[t.ID] = t
	for len(s.order) > s.cap {
		delete(s.byID, s.order[0])
		s.order = s.order[1:]
	}
	s.reg.Counter(MetricTraces).Inc()
}

// Get returns the stored trace with the given id.
func (s *Store) Get(id TraceID) (*Trace, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byID[id]
	return t, ok
}

// List summarizes the retained traces, most recent first.
func (s *Store) List() []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	ids := make([]TraceID, len(s.order))
	copy(ids, s.order)
	m := make(map[TraceID]*Trace, len(s.byID))
	for k, v := range s.byID {
		m[k] = v
	}
	s.mu.Unlock()
	out := make([]TraceSummary, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		t := m[ids[i]]
		if t == nil {
			continue
		}
		out = append(out, TraceSummary{
			ID:         t.ID,
			Class:      t.Attr("class"),
			Job:        t.Attr("job"),
			Start:      t.StartTime(),
			DurationUS: t.DurationUS(),
			Spans:      len(t.Spans()),
			Err:        t.Err(),
		})
	}
	return out
}

// RecordDrift folds one finished job's measurements into the class's drift
// record and publishes the obs.* gauges: predicted (model) vs measured
// (EWMA) makespan, realized critical path, and per-device busy ratios.
// measured and crit are µs; perDevice carries the model side pre-filled in
// ModelUS and the sample in MeasuredUS (the store does the smoothing).
func (s *Store) RecordDrift(class string, predictedUS, measuredUS, critUS float64, perDevice []DeviceDrift) {
	if s == nil || class == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.drift[class]
	if d == nil {
		d = &ClassDrift{Class: class, MeasuredUS: measuredUS, CritPathUS: critUS}
		for _, pd := range perDevice {
			d.Devices = append(d.Devices, pd)
		}
		s.drift[class] = d
	} else {
		d.MeasuredUS = ewmaAlpha*measuredUS + (1-ewmaAlpha)*d.MeasuredUS
		if critUS > 0 {
			if d.CritPathUS == 0 {
				d.CritPathUS = critUS
			} else {
				d.CritPathUS = ewmaAlpha*critUS + (1-ewmaAlpha)*d.CritPathUS
			}
		}
		for _, pd := range perDevice {
			found := false
			for i := range d.Devices {
				if d.Devices[i].Dev == pd.Dev && d.Devices[i].Worker == pd.Worker {
					d.Devices[i].ModelUS = pd.ModelUS
					d.Devices[i].MeasuredUS = ewmaAlpha*pd.MeasuredUS + (1-ewmaAlpha)*d.Devices[i].MeasuredUS
					found = true
					break
				}
			}
			if !found {
				d.Devices = append(d.Devices, pd)
			}
		}
	}
	d.Jobs++
	d.PredictedUS = predictedUS
	if d.PredictedUS > 0 {
		d.DriftRatio = d.MeasuredUS / d.PredictedUS
	}
	for i := range d.Devices {
		if d.Devices[i].ModelUS > 0 {
			d.Devices[i].Ratio = d.Devices[i].MeasuredUS / d.Devices[i].ModelUS
		}
	}
	if s.reg != nil {
		s.reg.Gauge(metrics.With(MetricPredictedUS, "class", class)).Set(d.PredictedUS)
		s.reg.Gauge(metrics.With(MetricMeasuredUS, "class", class)).Set(d.MeasuredUS)
		s.reg.Gauge(metrics.With(MetricDriftRatio, "class", class)).Set(d.DriftRatio)
		if d.CritPathUS > 0 {
			s.reg.Gauge(metrics.With(MetricCritPathUS, "class", class)).Set(d.CritPathUS)
		}
		for i := range d.Devices {
			dd := &d.Devices[i]
			s.reg.Gauge(metrics.With(MetricDeviceDriftRatio, "class", class, "dev", dd.Dev)).Set(dd.Ratio)
		}
	}
}

// Drift snapshots every class's drift record, sorted by class key.
func (s *Store) Drift() []ClassDrift {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]ClassDrift, 0, len(s.drift))
	for _, d := range s.drift {
		c := *d
		c.Devices = append([]DeviceDrift(nil), d.Devices...)
		out = append(out, c)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
