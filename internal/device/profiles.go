package device

// Calibration provenance.
//
// The cubic coefficients below are two-point fits of the paper's Fig. 4
// single-tile measurements, t(b) = LaunchUS + Cube·b³, anchored at
// b = 16 (the paper's production tile size) and b = 28 (the largest point
// plotted). Fig. 4 reports, approximately:
//
//	GTX580 (Fig. 4a):  T ≈ 450 µs, E ≈ 300 µs, UT/UE ≈ 120 µs at b = 28
//	GTX680 (Fig. 4b):  T ≈ 650 µs, E ≈ 430 µs, UT/UE ≈ 150 µs at b = 28
//	CPU    (Fig. 4c):  T ≈ 2900 µs, E ≈ 2000 µs, UT/UE ≈ 700 µs at b = 28
//
// Launch overheads are the near-constant floor of the small-tile end of the
// curves (CUDA kernel dispatch for the GPUs, PLASMA task overhead for the
// CPU). Slots is the number of b=16 tile kernels the device executes
// concurrently: one per CPU core; cores/16 for the GPUs (a 16-wide thread
// block per tile), which reproduces the paper's observation that the GTX680
// is per-tile slower but in aggregate the stronger update device.
//
// These constants reproduce the paper's qualitative landscape (who wins
// each role, where the device-count tradeoff crosses over); they are not —
// and cannot be — bit-accurate timings of 2013 hardware.

const cube28 = 28.0 * 28.0 * 28.0 // 21952

func fit(t28, launch float64) float64 { return (t28 - launch) / cube28 }

// GTX580 models the NVIDIA GTX580 (512 cores): the per-tile fastest GPU and
// the paper's choice of main computing device.
func GTX580() *Profile {
	const launch = 30
	return &Profile{
		Name:            "GTX580",
		Kind:            "gpu",
		Cores:           512,
		Slots:           512 / 16,
		LaunchUS:        launch,
		BulkScale:       1.0 / 3,
		PanelFused:      true,
		PanelChainScale: 0.1,
		Cube: [NumClasses]float64{
			ClassT:  fit(450, launch),
			ClassE:  fit(300, launch),
			ClassUT: fit(120, launch),
			ClassUE: fit(120, launch),
		},
	}
}

// GTX680 models the NVIDIA GTX680 (1536 cores): per-tile slower than the
// GTX580 but with twice the usable parallel slots (Kepler's wider SMX units
// sustain fewer concurrent small tile kernels per core than Fermi, so slots
// scale sub-linearly with the core count), making it the preferred update
// device (paper Section VI-B).
func GTX680() *Profile {
	const launch = 35
	return &Profile{
		Name:            "GTX680",
		Kind:            "gpu",
		Cores:           1536,
		Slots:           64,
		LaunchUS:        launch,
		BulkScale:       1.0 / 3,
		PanelFused:      true,
		PanelChainScale: 0.1,
		Cube: [NumClasses]float64{
			ClassT:  fit(650, launch),
			ClassE:  fit(430, launch),
			ClassUT: fit(150, launch),
			ClassUE: fit(150, launch),
		},
	}
}

// CPUi7 models the Intel i7-3820 quad-core CPU running the PLASMA kernels
// (paper Fig. 4c). Its per-tile times make it unsuitable as the main
// computing device — the paper measures a 60×+ slowdown when it is forced
// into that role (Section VI-B).
func CPUi7() *Profile {
	const launch = 2
	return &Profile{
		Name:      "CPU-i7-3820",
		Kind:      "cpu",
		Cores:     4,
		Slots:     4,
		LaunchUS:  launch,
		BulkScale: 0.04,
		Cube: [NumClasses]float64{
			ClassT:  fit(2900, launch),
			ClassE:  fit(2000, launch),
			ClassUT: fit(700, launch),
			ClassUE: fit(700, launch),
		},
	}
}

// PCIe models the evaluation machine's PCI-express fabric: a fixed DMA
// setup cost per batched transfer plus streaming at an effective 5 GB/s.
func PCIe() Link {
	return Link{SetupUS: 40, BytesPerUS: 5000}
}

// PaperPlatform returns the full evaluation machine of Table II:
// one i7-3820 CPU, one GTX580 and two GTX680s on PCI-express, with the
// 4-byte elements the paper's communication model counts.
func PaperPlatform() *Platform {
	return &Platform{
		Devices:   []*Profile{CPUi7(), GTX580(), GTX680(), GTX680()},
		Link:      PCIe(),
		ElemBytes: 4,
	}
}

// XeonPhi models an Intel Xeon Phi 5110P coprocessor (60 cores), the other
// accelerator the paper's introduction names and its conclusion leaves as
// future work. The model places it between the CPU and the GPUs: many
// moderately fast cores make it a capable update engine, while the offload
// round-trip and the lack of a fused column kernel keep it a mediocre main
// computing device. Constants are plausible-scale estimates (there is no
// Fig. 4 measurement to calibrate against) and are exercised by the
// extension experiments only.
func XeonPhi() *Profile {
	const launch = 40 // offload dispatch round-trip
	return &Profile{
		Name:      "XeonPhi-5110P",
		Kind:      "phi",
		Cores:     60,
		Slots:     60,
		LaunchUS:  launch,
		BulkScale: 1.0 / 3,
		Cube: [NumClasses]float64{
			ClassT:  fit(1300, launch),
			ClassE:  fit(900, launch),
			ClassUT: fit(330, launch),
			ClassUE: fit(330, launch),
		},
	}
}

// PhiPlatform returns the paper platform extended with a Xeon Phi — the
// "other computing devices" scenario of the paper's conclusion.
func PhiPlatform() *Platform {
	return &Platform{
		Devices:   []*Profile{CPUi7(), GTX580(), GTX680(), GTX680(), XeonPhi()},
		Link:      PCIe(),
		ElemBytes: 4,
	}
}

// Ethernet10G models a 10-gigabit inter-node network: a millisecond-scale
// software round-trip plus ~1.25 GB/s of streaming bandwidth.
func Ethernet10G() Link {
	return Link{SetupUS: 300, BytesPerUS: 1250}
}

// MultiNodePlatform replicates the paper machine across `nodes` nodes
// joined by 10 GbE — the paper's "multi node environment" future work.
// Device order is node-major (node 0's CPU, GTX580, GTX680, GTX680, then
// node 1's, …).
func MultiNodePlatform(nodes int) *Platform {
	if nodes < 1 {
		nodes = 1
	}
	pl := &Platform{Link: PCIe(), ElemBytes: 4, Network: Ethernet10G()}
	for n := 0; n < nodes; n++ {
		for _, d := range []*Profile{CPUi7(), GTX580(), GTX680(), GTX680()} {
			pl.Devices = append(pl.Devices, d)
			pl.NodeOf = append(pl.NodeOf, n)
		}
	}
	return pl
}
