package device

import (
	"fmt"

	"repro/internal/lapack"
	"repro/internal/matrix"
)

// Sample is one Fig. 4-style measurement: the wall time of a single tile
// operation of one class at one tile size.
type Sample struct {
	Class Class
	B     int
	US    float64
}

// FitProfile builds a device profile from measured samples by solving the
// least-squares system implied by the timing model
//
//	t(class, b) = LaunchUS + Cube[class]·b³
//
// — one shared launch intercept plus a cubic slope per operation class.
// The solve runs on this library's own QR machinery (lapack.SolveQR), so
// the calibration procedure the paper performed by hand is reproducible
// from raw measurements. At least one sample per class and more samples
// than unknowns (1 + NumClasses) are required; name, cores, slots and the
// bulk/panel parameters describe the device's execution structure and are
// passed through.
func FitProfile(name, kind string, cores, slots int, bulkScale float64,
	panelFused bool, panelChainScale float64, samples []Sample) (*Profile, error) {
	unknowns := 1 + int(NumClasses)
	if len(samples) < unknowns {
		return nil, fmt.Errorf("device: %d samples for %d unknowns", len(samples), unknowns)
	}
	seen := [NumClasses]bool{}
	design := matrix.New(len(samples), unknowns)
	rhs := make([]float64, len(samples))
	for i, s := range samples {
		if s.Class >= NumClasses {
			return nil, fmt.Errorf("device: sample %d has invalid class %d", i, s.Class)
		}
		if s.B < 1 || s.US <= 0 {
			return nil, fmt.Errorf("device: sample %d is degenerate (b=%d, t=%v)", i, s.B, s.US)
		}
		seen[s.Class] = true
		design.Set(i, 0, 1) // launch intercept
		bb := float64(s.B)
		design.Set(i, 1+int(s.Class), bb*bb*bb)
		rhs[i] = s.US
	}
	for c := Class(0); c < NumClasses; c++ {
		if !seen[c] {
			return nil, fmt.Errorf("device: no samples for class %v", c)
		}
	}
	coef, err := lapack.SolveQR(design, rhs)
	if err != nil {
		return nil, fmt.Errorf("device: calibration solve: %w", err)
	}
	p := &Profile{
		Name: name, Kind: kind, Cores: cores, Slots: slots,
		LaunchUS: coef[0], BulkScale: bulkScale,
		PanelFused: panelFused, PanelChainScale: panelChainScale,
	}
	for c := Class(0); c < NumClasses; c++ {
		p.Cube[c] = coef[1+int(c)]
	}
	// Noisy measurements can push fitted floors slightly negative; clamp to
	// harmless minima rather than rejecting the calibration (LAPACK-style
	// robustness: the model must stay usable, and Validate still guards the
	// structural fields).
	if p.LaunchUS < 0 {
		p.LaunchUS = 0
	}
	const minCube = 1e-9
	for c := Class(0); c < NumClasses; c++ {
		if p.Cube[c] < minCube {
			p.Cube[c] = minCube
		}
	}
	return p, p.Validate()
}

// SampleProfile generates Fig. 4-style samples from an existing profile —
// the round-trip used to validate the calibration fit and to build
// synthetic measurement sets for new devices.
func SampleProfile(p *Profile, sizes []int) []Sample {
	var out []Sample
	for c := Class(0); c < NumClasses; c++ {
		for _, b := range sizes {
			out = append(out, Sample{Class: c, B: b, US: p.SingleTileUS(c, b)})
		}
	}
	return out
}
