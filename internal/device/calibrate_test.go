package device

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitProfileRoundTrip(t *testing.T) {
	// Samples generated from a known profile must recover it exactly
	// (the model is linear in the unknowns and the data is noise-free).
	want := GTX580()
	samples := SampleProfile(want, []int{4, 8, 12, 16, 20, 24, 28})
	got, err := FitProfile(want.Name, want.Kind, want.Cores, want.Slots,
		want.BulkScale, want.PanelFused, want.PanelChainScale, samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.LaunchUS-want.LaunchUS) > 1e-8 {
		t.Fatalf("launch %v, want %v", got.LaunchUS, want.LaunchUS)
	}
	for c := Class(0); c < NumClasses; c++ {
		if math.Abs(got.Cube[c]-want.Cube[c]) > 1e-12 {
			t.Fatalf("%v coefficient %v, want %v", c, got.Cube[c], want.Cube[c])
		}
	}
}

func TestFitProfileWithNoise(t *testing.T) {
	// 2% multiplicative noise: the fit must still land within a few percent
	// of the true coefficients at the anchor size.
	want := GTX680()
	rng := rand.New(rand.NewSource(5))
	samples := SampleProfile(want, []int{4, 8, 12, 16, 20, 24, 28})
	for i := range samples {
		samples[i].US *= 1 + 0.02*rng.NormFloat64()
	}
	got, err := FitProfile(want.Name, want.Kind, want.Cores, want.Slots,
		want.BulkScale, want.PanelFused, want.PanelChainScale, samples)
	if err != nil {
		t.Fatal(err)
	}
	for c := Class(0); c < NumClasses; c++ {
		wantT := want.SingleTileUS(c, 16)
		gotT := got.SingleTileUS(c, 16)
		if math.Abs(gotT-wantT)/wantT > 0.10 {
			t.Fatalf("%v at b=16: fitted %v vs true %v", c, gotT, wantT)
		}
	}
}

func TestFitProfileErrors(t *testing.T) {
	if _, err := FitProfile("x", "gpu", 512, 32, 1, false, 0, nil); err == nil {
		t.Fatal("too few samples must error")
	}
	// Missing class.
	partial := SampleProfile(GTX580(), []int{8, 16})
	var noUE []Sample
	for _, s := range partial {
		if s.Class != ClassUE {
			noUE = append(noUE, s)
		}
	}
	if _, err := FitProfile("x", "gpu", 512, 32, 1, false, 0, noUE); err == nil {
		t.Fatal("missing class must error")
	}
	bad := SampleProfile(GTX580(), []int{8, 16})
	bad[0].US = -1
	if _, err := FitProfile("x", "gpu", 512, 32, 1, false, 0, bad); err == nil {
		t.Fatal("degenerate sample must error")
	}
	bad2 := SampleProfile(GTX580(), []int{8, 16})
	bad2[0].Class = NumClasses
	if _, err := FitProfile("x", "gpu", 512, 32, 1, false, 0, bad2); err == nil {
		t.Fatal("invalid class must error")
	}
}

func TestFitProfileUsableInScheduling(t *testing.T) {
	// A fitted profile must drop into the platform and produce the same
	// scheduling decisions as the original.
	orig := GTX580()
	fit, err := FitProfile(orig.Name, orig.Kind, orig.Cores, orig.Slots,
		orig.BulkScale, orig.PanelFused, orig.PanelChainScale,
		SampleProfile(orig, []int{8, 16, 24, 28}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.UpdateTilesPerUS(16)-orig.UpdateTilesPerUS(16)) > 1e-9 {
		t.Fatal("fitted update throughput differs")
	}
	if math.Abs(fit.PanelUS(16, 100)-orig.PanelUS(16, 100)) > 1e-6 {
		t.Fatal("fitted panel time differs")
	}
}

func TestFitProfileClampsNoisyFloors(t *testing.T) {
	// Construct samples where one class's cubic term fits negative (a flat,
	// noisy series): the fit must clamp, not fail.
	var samples []Sample
	for _, b := range []int{4, 8, 12, 16} {
		samples = append(samples,
			Sample{Class: ClassT, B: b, US: 10 + float64(b*b*b)/1000},
			Sample{Class: ClassE, B: b, US: 10 + float64(b*b*b)/1000},
			Sample{Class: ClassUT, B: b, US: 10}, // flat: cubic term ~0 or below
			Sample{Class: ClassUE, B: b, US: 10 + float64(b*b*b)/1000},
		)
	}
	p, err := FitProfile("noisy", "cpu", 4, 4, 1, false, 0, samples)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cube[ClassUT] <= 0 {
		t.Fatalf("UT coefficient %v not clamped", p.Cube[ClassUT])
	}
}
