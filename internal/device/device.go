// Package device models the heterogeneous computing devices of the paper's
// evaluation platform: an Intel i7-3820 CPU (4 cores), one NVIDIA GTX580
// (512 cores) and two GTX680s (1536 cores each), joined by PCI-express.
//
// Go has no CUDA substrate, so these are calibrated performance models, not
// drivers: each profile reports how long a device takes to run a batch of
// tile kernels of a given class and tile size, following the measurements in
// the paper's Fig. 4 (single-tile times) and its communication accounting
// (Section IV-B). The simulator (internal/sim) and the scheduler
// (internal/sched) consume only these quantities — exactly the inputs the
// paper's optimization algorithms require.
package device

import (
	"fmt"

	"repro/internal/tiled"
)

// Class is the paper's four-step classification of tile operations.
type Class uint8

const (
	// ClassT is triangulation (GEQRT).
	ClassT Class = iota
	// ClassE is elimination (TSQRT/TTQRT).
	ClassE
	// ClassUT is update-for-triangulation (UNMQR).
	ClassUT
	// ClassUE is update-for-elimination (TSMQR/TTMQR).
	ClassUE
	// NumClasses is the number of operation classes.
	NumClasses
)

// String returns the paper's abbreviation for the class.
func (c Class) String() string {
	switch c {
	case ClassT:
		return "T"
	case ClassE:
		return "E"
	case ClassUT:
		return "UT"
	case ClassUE:
		return "UE"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// ClassOf maps a tiled-QR operation kind to its class.
func ClassOf(k tiled.Kind) Class {
	switch k {
	case tiled.KindGEQRT:
		return ClassT
	case tiled.KindTSQRT, tiled.KindTTQRT:
		return ClassE
	case tiled.KindUNMQR:
		return ClassUT
	default:
		return ClassUE
	}
}

// Profile is a device performance model.
//
// A single tile operation of class c on tile size b costs
//
//	LaunchUS + Cube[c]·b³   microseconds,
//
// matching the shape of the paper's Fig. 4 curves (a fixed kernel-dispatch
// overhead plus a cubic compute term). Those single-op latencies include
// per-launch effects that amortize away in production phases, so bulk
// execution is governed by two further parameters:
//
//   - a batch of t independent tile operations issued together shares one
//     launch, runs Slots tiles at a time, and streams each tile at
//     BulkScale of its single-op compute cost:
//     LaunchUS + ceil(t/Slots)·Cube[c]·b³·BulkScale;
//   - the panel (the dependent triangulate-and-eliminate chain down one
//     column) either runs as one fused launch whose chained eliminations
//     cost PanelChainScale of a full elimination each (PanelFused — the
//     custom GPU column kernel), or as a serial per-tile chain at full
//     single-op cost (the CPU's task-based path; this is what makes the
//     CPU catastrophic as a main computing device, Section VI-B).
//
// Slots captures the device's usable tile-level parallelism (the paper's
// "number of parallel cores" normalised by the threads one b=16 tile kernel
// occupies); it is what makes a 1536-core GTX680 the better update engine
// even though its per-tile latency is worse than the GTX580's.
type Profile struct {
	Name     string
	Kind     string // "cpu" or "gpu"
	Cores    int
	Slots    int
	LaunchUS float64
	Cube     [NumClasses]float64 // µs per b³ per tile, by class
	// BulkScale is the sustained-throughput discount for batched tiles
	// relative to the single-op compute cost (0 < BulkScale ≤ 1).
	BulkScale float64
	// PanelFused selects the fused column-kernel panel model; when false
	// the panel is a serial chain of single-tile operations.
	PanelFused bool
	// PanelChainScale is the per-elimination cost fraction inside a fused
	// panel kernel.
	PanelChainScale float64
}

// SingleTileUS returns the time for one isolated tile operation — the
// quantity the paper plots in Fig. 4.
func (p *Profile) SingleTileUS(c Class, b int) float64 {
	return p.LaunchUS + p.computeUS(c, b)
}

func (p *Profile) computeUS(c Class, b int) float64 {
	bb := float64(b)
	return p.Cube[c] * bb * bb * bb
}

// bulkUS returns the sustained per-tile compute cost in a batch.
func (p *Profile) bulkUS(c Class, b int) float64 {
	return p.computeUS(c, b) * p.BulkScale
}

// BatchUS returns the time for a batch of `tiles` independent tile
// operations of one class issued as a single launch.
func (p *Profile) BatchUS(c Class, b, tiles int) float64 {
	if tiles <= 0 {
		return 0
	}
	rounds := (tiles + p.Slots - 1) / p.Slots
	return p.LaunchUS + float64(rounds)*p.bulkUS(c, b)
}

// UpdateTilesPerUS returns the device's steady-state update throughput in
// tiles per microsecond (UT and UE averaged), the quantity Algorithm 4's
// ratio construction ("the number of tiles that can be updated in a unit
// time") is built from.
func (p *Profile) UpdateTilesPerUS(b int) float64 {
	per := (p.bulkUS(ClassUT, b) + p.bulkUS(ClassUE, b)) / 2
	if per == 0 {
		return 0
	}
	return float64(p.Slots) / per
}

// UpdatePairUS returns the throughput-adjusted time to push one tile through
// both update steps (UT + UE), used by the Eq. 10 operation-time model.
func (p *Profile) UpdatePairUS(b int) float64 {
	return (p.bulkUS(ClassUT, b) + p.bulkUS(ClassUE, b)) / float64(p.Slots)
}

// PanelUS returns the time for the panel factorization of one column of m
// tiles on this device (the paper's Table I panel: M tiles triangulated, M
// eliminated). Fused devices run it as one launch with chain-discounted
// eliminations; unfused devices walk the dependent chain at full single-op
// cost — the model that reproduces the paper's measured CPU-as-main times.
func (p *Profile) PanelUS(b, m int) float64 {
	if m <= 0 {
		return 0
	}
	if p.PanelFused {
		return p.LaunchUS + p.computeUS(ClassT, b) +
			float64(m-1)*p.computeUS(ClassE, b)*p.PanelChainScale
	}
	return float64(m)*p.SingleTileUS(ClassT, b) +
		float64(m-1)*p.SingleTileUS(ClassE, b)
}

// Link models one PCI-express path. A transfer is one batched DMA: a fixed
// setup cost followed by the payload streaming at the link bandwidth —
// matching the paper's Eq. 11, which prices communication purely by volume
// over link speed. speed(x, x) = ∞ in Eq. 11 is represented by the caller
// skipping same-device transfers. Each device owns one link, so concurrent
// outgoing transfers from the same source serialize (the simulator models
// this); that contention is what makes every additional participating
// device cost real broadcast time.
type Link struct {
	SetupUS    float64 // per-transfer DMA setup cost
	BytesPerUS float64 // sustained bandwidth
}

// TransferUS returns the time to move one batched transfer of `bytes` bytes
// across the link.
func (l Link) TransferUS(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.SetupUS + bytes/l.BytesPerUS
}

// Platform is a full machine description: the device set, the interconnect,
// and the element width used by the paper's communication accounting.
//
// NodeOf and Network extend the single-node model of the paper toward its
// stated future work ("expanding ... into a multi node environment"):
// when two devices live on different nodes, their transfers use the Network
// link instead of the intra-node PCIe link. A nil NodeOf means everything
// shares one node.
type Platform struct {
	Devices   []*Profile
	Link      Link
	ElemBytes int
	// NodeOf[i] is the node hosting device i; nil = single node.
	NodeOf []int
	// Network is the inter-node interconnect, used when NodeOf differs.
	Network Link
}

// LinkBetween returns the link used for transfers between two devices
// (by platform index): intra-node PCIe, or the inter-node network.
func (pl *Platform) LinkBetween(a, b int) Link {
	if pl.NodeOf == nil || a == b {
		return pl.Link
	}
	if a < len(pl.NodeOf) && b < len(pl.NodeOf) && pl.NodeOf[a] != pl.NodeOf[b] {
		return pl.Network
	}
	return pl.Link
}

// TileBytes returns the size of one b×b tile on the wire.
func (pl *Platform) TileBytes(b int) float64 {
	return float64(b) * float64(b) * float64(pl.ElemBytes)
}

// DeviceByName returns the profile with the given name.
func (pl *Platform) DeviceByName(name string) (*Profile, error) {
	for _, d := range pl.Devices {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("device: no device named %q", name)
}

// Index returns the position of the profile in the platform's device list,
// or -1 if absent.
func (pl *Platform) Index(p *Profile) int {
	for i, d := range pl.Devices {
		if d == p {
			return i
		}
	}
	return -1
}

// Validate checks that a profile is internally consistent: positive core,
// slot and scale figures and non-negative timing coefficients.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("device: profile without a name")
	}
	if p.Cores < 1 || p.Slots < 1 {
		return fmt.Errorf("device: %s has cores=%d slots=%d", p.Name, p.Cores, p.Slots)
	}
	if p.LaunchUS < 0 {
		return fmt.Errorf("device: %s has negative launch overhead", p.Name)
	}
	if p.BulkScale <= 0 || p.BulkScale > 1 {
		return fmt.Errorf("device: %s has bulk scale %v outside (0, 1]", p.Name, p.BulkScale)
	}
	if p.PanelFused && (p.PanelChainScale <= 0 || p.PanelChainScale > 1) {
		return fmt.Errorf("device: %s has panel chain scale %v outside (0, 1]", p.Name, p.PanelChainScale)
	}
	for c := Class(0); c < NumClasses; c++ {
		if p.Cube[c] <= 0 {
			return fmt.Errorf("device: %s has non-positive %v coefficient", p.Name, c)
		}
	}
	return nil
}

// Validate checks the platform: at least one device, all devices valid,
// a usable link, and a consistent node map.
func (pl *Platform) Validate() error {
	if len(pl.Devices) == 0 {
		return fmt.Errorf("device: empty platform")
	}
	for _, d := range pl.Devices {
		if err := d.Validate(); err != nil {
			return err
		}
	}
	if pl.Link.BytesPerUS <= 0 {
		return fmt.Errorf("device: link bandwidth %v", pl.Link.BytesPerUS)
	}
	if pl.ElemBytes < 1 {
		return fmt.Errorf("device: element size %d", pl.ElemBytes)
	}
	if pl.NodeOf != nil {
		if len(pl.NodeOf) != len(pl.Devices) {
			return fmt.Errorf("device: %d node entries for %d devices", len(pl.NodeOf), len(pl.Devices))
		}
		if pl.Network.BytesPerUS <= 0 {
			return fmt.Errorf("device: multi-node platform without a network")
		}
	}
	return nil
}
