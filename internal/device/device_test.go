package device

import (
	"testing"

	"repro/internal/tiled"
)

func TestClassOf(t *testing.T) {
	cases := map[tiled.Kind]Class{
		tiled.KindGEQRT: ClassT,
		tiled.KindUNMQR: ClassUT,
		tiled.KindTSQRT: ClassE,
		tiled.KindTTQRT: ClassE,
		tiled.KindTSMQR: ClassUE,
		tiled.KindTTMQR: ClassUE,
	}
	for kind, want := range cases {
		if got := ClassOf(kind); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", kind, got, want)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassT.String() != "T" || ClassUE.String() != "UE" {
		t.Fatal("class names wrong")
	}
}

// TestFig4Shape verifies the calibrated profiles reproduce the qualitative
// content of the paper's Fig. 4: single-tile times grow with tile size, the
// ordering T > E > UT/UE holds on every device, and the CPU is the slowest
// device per tile while the GTX580 beats the GTX680 per tile.
func TestFig4Shape(t *testing.T) {
	devs := []*Profile{GTX580(), GTX680(), CPUi7()}
	for _, d := range devs {
		prev := 0.0
		for b := 4; b <= 28; b += 4 {
			tt := d.SingleTileUS(ClassT, b)
			if tt <= prev {
				t.Fatalf("%s: T time not increasing at b=%d", d.Name, b)
			}
			prev = tt
			if !(d.SingleTileUS(ClassT, b) > d.SingleTileUS(ClassE, b)) {
				t.Fatalf("%s: T ≤ E at b=%d", d.Name, b)
			}
			if !(d.SingleTileUS(ClassE, b) > d.SingleTileUS(ClassUE, b)) {
				t.Fatalf("%s: E ≤ UE at b=%d", d.Name, b)
			}
		}
	}
	for _, c := range []Class{ClassT, ClassE, ClassUT, ClassUE} {
		if !(CPUi7().SingleTileUS(c, 16) > GTX680().SingleTileUS(c, 16)) {
			t.Fatalf("CPU must be slowest per tile for %v", c)
		}
		if !(GTX680().SingleTileUS(c, 16) > GTX580().SingleTileUS(c, 16)) {
			t.Fatalf("GTX680 must be per-tile slower than GTX580 for %v", c)
		}
	}
}

func TestFig4CalibrationAnchors(t *testing.T) {
	// The b=28 anchors must reproduce the Fig. 4 readings exactly.
	anchors := []struct {
		dev  *Profile
		c    Class
		want float64
	}{
		{GTX580(), ClassT, 450}, {GTX580(), ClassE, 300}, {GTX580(), ClassUE, 120},
		{GTX680(), ClassT, 650}, {GTX680(), ClassE, 430}, {GTX680(), ClassUE, 150},
		{CPUi7(), ClassT, 2900}, {CPUi7(), ClassE, 2000}, {CPUi7(), ClassUE, 700},
	}
	for _, a := range anchors {
		got := a.dev.SingleTileUS(a.c, 28)
		if got < a.want-0.5 || got > a.want+0.5 {
			t.Errorf("%s %v at b=28: %.1f, want %.0f", a.dev.Name, a.c, got, a.want)
		}
	}
}

func TestBatchAmortizesLaunch(t *testing.T) {
	d := GTX680()
	single := d.SingleTileUS(ClassUE, 16)
	batch := d.BatchUS(ClassUE, 16, d.Slots)
	if batch >= single*float64(d.Slots) {
		t.Fatalf("batch of %d tiles (%.1f) must beat %d singles (%.1f)",
			d.Slots, batch, d.Slots, single*float64(d.Slots))
	}
	// Slots+1 tiles need a second round.
	if d.BatchUS(ClassUE, 16, d.Slots+1) <= d.BatchUS(ClassUE, 16, d.Slots) {
		t.Fatal("extra round must cost extra time")
	}
	if d.BatchUS(ClassUE, 16, 0) != 0 {
		t.Fatal("empty batch must cost 0")
	}
}

func TestUpdateThroughputOrdering(t *testing.T) {
	// The structural fact behind the paper's device roles: the GTX680 has
	// the highest update throughput, the CPU by far the lowest.
	b := 16
	cpu, g580, g680 := CPUi7(), GTX580(), GTX680()
	if !(g680.UpdateTilesPerUS(b) > g580.UpdateTilesPerUS(b)) {
		t.Fatal("GTX680 must out-update GTX580")
	}
	if !(g580.UpdateTilesPerUS(b) > 5*cpu.UpdateTilesPerUS(b)) {
		t.Fatal("GPUs must dominate the CPU on updates")
	}
}

func TestPanelTime(t *testing.T) {
	d := GTX580()
	if d.PanelUS(16, 0) != 0 {
		t.Fatal("empty panel must cost 0")
	}
	one := d.PanelUS(16, 1)
	if one != d.SingleTileUS(ClassT, 16) {
		t.Fatal("single-tile fused panel is one triangulation launch")
	}
	if !(d.PanelUS(16, 64) > d.PanelUS(16, 8)) {
		t.Fatal("panel time must grow with column height")
	}
}

func TestLinkTransfer(t *testing.T) {
	l := PCIe()
	if l.TransferUS(0) != 0 {
		t.Fatal("empty transfer must cost 0")
	}
	one := l.TransferUS(1024)
	ten := l.TransferUS(10240)
	if one <= l.SetupUS {
		t.Fatal("transfer must include setup plus payload time")
	}
	// Batched DMA: 10 tiles in one transfer pay the setup once.
	if got, want := ten-one, 9*1024/l.BytesPerUS; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("marginal payload cost %.3f, want %.3f (setup must amortize)", got, want)
	}
}

func TestPanelModelRoles(t *testing.T) {
	// The panel model must reproduce the Fig. 9 structure: the GTX580 has
	// the fastest panel, the GTX680 is moderately slower, and the CPU's
	// unfused serial chain is catastrophically slower.
	const b, m = 16, 200
	g580, g680, cpu := GTX580().PanelUS(b, m), GTX680().PanelUS(b, m), CPUi7().PanelUS(b, m)
	if !(g580 < g680) {
		t.Fatalf("GTX580 panel (%.0f) must beat GTX680 (%.0f)", g580, g680)
	}
	if !(cpu > 10*g680) {
		t.Fatalf("CPU panel (%.0f) must be far slower than GPU panels (%.0f)", cpu, g680)
	}
}

func TestPaperPlatform(t *testing.T) {
	pl := PaperPlatform()
	if len(pl.Devices) != 4 {
		t.Fatalf("platform has %d devices", len(pl.Devices))
	}
	if _, err := pl.DeviceByName("GTX580"); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.DeviceByName("nope"); err == nil {
		t.Fatal("expected lookup error")
	}
	if pl.TileBytes(16) != 1024 {
		t.Fatalf("tile bytes = %v", pl.TileBytes(16))
	}
	totalCores := 0
	for _, d := range pl.Devices {
		totalCores += d.Cores
	}
	if totalCores != 4+512+1536+1536 { // the paper's 3,588 parallel cores
		t.Fatalf("total cores = %d", totalCores)
	}
	if idx := pl.Index(pl.Devices[2]); idx != 2 {
		t.Fatalf("Index = %d", idx)
	}
	if idx := pl.Index(GTX580()); idx != -1 {
		t.Fatalf("foreign profile Index = %d", idx)
	}
}

func TestXeonPhiBetweenCPUAndGPUs(t *testing.T) {
	phi := XeonPhi()
	cpu, g680 := CPUi7(), GTX680()
	b := 16
	if !(phi.UpdateTilesPerUS(b) > cpu.UpdateTilesPerUS(b)) {
		t.Fatal("Phi must out-update the CPU")
	}
	if !(phi.UpdateTilesPerUS(b) < g680.UpdateTilesPerUS(b)) {
		t.Fatal("Phi must not out-update the GTX680")
	}
	if phi.PanelFused {
		t.Fatal("Phi panel is not a fused column kernel")
	}
}

func TestPhiPlatform(t *testing.T) {
	pl := PhiPlatform()
	if len(pl.Devices) != 5 {
		t.Fatalf("%d devices", len(pl.Devices))
	}
	if _, err := pl.DeviceByName("XeonPhi-5110P"); err != nil {
		t.Fatal(err)
	}
}

func TestLinkBetweenNodes(t *testing.T) {
	pl := MultiNodePlatform(2)
	if len(pl.Devices) != 8 || len(pl.NodeOf) != 8 {
		t.Fatalf("%d devices, %d node entries", len(pl.Devices), len(pl.NodeOf))
	}
	// Same node → PCIe; cross node → network.
	same := pl.LinkBetween(1, 2)
	cross := pl.LinkBetween(1, 5)
	if same != pl.Link {
		t.Fatal("intra-node link must be PCIe")
	}
	if cross != pl.Network {
		t.Fatal("inter-node link must be the network")
	}
	if !(cross.TransferUS(1e6) > same.TransferUS(1e6)) {
		t.Fatal("network must be slower than PCIe")
	}
	// Single-node platform: LinkBetween is always PCIe.
	solo := PaperPlatform()
	if solo.LinkBetween(0, 3) != solo.Link {
		t.Fatal("nil NodeOf must mean one node")
	}
}

func TestMultiNodePlatformClampsNodes(t *testing.T) {
	pl := MultiNodePlatform(0)
	if len(pl.Devices) != 4 {
		t.Fatalf("%d devices for clamped single node", len(pl.Devices))
	}
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range []*Profile{GTX580(), GTX680(), CPUi7(), XeonPhi()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	for _, pl := range []*Platform{PaperPlatform(), PhiPlatform(), MultiNodePlatform(2)} {
		if err := pl.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	bad := GTX580()
	bad.Slots = 0
	if bad.Validate() == nil {
		t.Fatal("zero slots must fail")
	}
	bad2 := GTX580()
	bad2.BulkScale = 0
	if bad2.Validate() == nil {
		t.Fatal("zero bulk scale must fail")
	}
	badPl := PaperPlatform()
	badPl.Link.BytesPerUS = 0
	if badPl.Validate() == nil {
		t.Fatal("zero bandwidth must fail")
	}
	badNodes := MultiNodePlatform(2)
	badNodes.NodeOf = badNodes.NodeOf[:3]
	if badNodes.Validate() == nil {
		t.Fatal("node map mismatch must fail")
	}
}

func TestClassStringAllBranches(t *testing.T) {
	names := map[Class]string{ClassT: "T", ClassE: "E", ClassUT: "UT", ClassUE: "UE"}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d: %s", c, c.String())
		}
	}
	if Class(42).String() == "" {
		t.Fatal("unknown class must stringify")
	}
}

func TestUpdatePairUSConsistent(t *testing.T) {
	d := GTX680()
	pair := d.UpdatePairUS(16)
	// One tile through UT+UE at throughput speed equals 2/throughput.
	want := 2 / d.UpdateTilesPerUS(16)
	if diff := pair - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("UpdatePairUS %v vs 2/throughput %v", pair, want)
	}
}
