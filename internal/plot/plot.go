// Package plot renders simple XY charts as text, so cmd/qrbench can show
// the paper's figures as figures — not just tables — in a terminal.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line of (x, y) points; xs are shared across series.
type Series struct {
	Name string
	Ys   []float64
}

// Chart renders the series over shared xs into a width×height character
// grid with left/bottom axes. logY plots log10(y) (non-positive values are
// clamped to the smallest positive y). Each series is drawn with its own
// mark (1, 2, 3, …); a legend follows the grid.
func Chart(title string, xs []float64, series []Series, width, height int, logY bool) string {
	if len(xs) == 0 || len(series) == 0 || width < 8 || height < 3 {
		return ""
	}
	transform := func(v float64) float64 { return v }
	if logY {
		minPos := math.Inf(1)
		for _, s := range series {
			for _, y := range s.Ys {
				if y > 0 && y < minPos {
					minPos = y
				}
			}
		}
		if math.IsInf(minPos, 1) {
			minPos = 1
		}
		transform = func(v float64) float64 {
			if v < minPos {
				v = minPos
			}
			return math.Log10(v)
		}
	}

	loX, hiX := xs[0], xs[0]
	for _, x := range xs {
		loX = math.Min(loX, x)
		hiX = math.Max(hiX, x)
	}
	loY, hiY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Ys {
			t := transform(y)
			loY = math.Min(loY, t)
			hiY = math.Max(hiY, t)
		}
	}
	if hiX == loX {
		hiX = loX + 1
	}
	if hiY == loY {
		hiY = loY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := byte('1' + si)
		if si >= 9 {
			mark = byte('a' + si - 9)
		}
		n := len(s.Ys)
		if n > len(xs) {
			n = len(xs)
		}
		for i := 0; i < n; i++ {
			cx := int((xs[i] - loX) / (hiX - loX) * float64(width-1))
			cy := int((transform(s.Ys[i]) - loY) / (hiY - loY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	yLabel := func(frac float64) string {
		v := loY + frac*(hiY-loY)
		if logY {
			v = math.Pow(10, v)
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", 9)
		switch r {
		case 0:
			label = yLabel(1)
		case height - 1:
			label = yLabel(0)
		case (height - 1) / 2:
			label = yLabel(0.5)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", 9), width/2, loX, width-width/2, hiX)
	legend := make([]string, 0, len(series))
	for si, s := range series {
		mark := byte('1' + si)
		if si >= 9 {
			mark = byte('a' + si - 9)
		}
		legend = append(legend, fmt.Sprintf("%c=%s", mark, s.Name))
	}
	sort.Strings(legend)
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 9), strings.Join(legend, "  "))
	return b.String()
}
