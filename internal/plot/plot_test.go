package plot

import (
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	s := Chart("test", xs, []Series{
		{Name: "up", Ys: []float64{1, 2, 3, 4}},
		{Name: "down", Ys: []float64{4, 3, 2, 1}},
	}, 40, 10, false)
	if !strings.Contains(s, "test") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "1=up") || !strings.Contains(s, "2=down") {
		t.Fatalf("missing legend:\n%s", s)
	}
	if !strings.Contains(s, "1") || !strings.Contains(s, "2") {
		t.Fatal("missing marks")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 1+10+2+1 { // title + grid + axis + xlabels + legend
		t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
	}
}

func TestChartLogY(t *testing.T) {
	xs := []float64{1, 2, 3}
	s := Chart("", xs, []Series{{Name: "exp", Ys: []float64{1, 100, 10000}}}, 30, 9, true)
	if s == "" {
		t.Fatal("empty chart")
	}
	// In log space the three points are evenly spaced: top row and bottom
	// row both carry a mark.
	lines := strings.Split(s, "\n")
	if !strings.Contains(lines[0], "1") || !strings.Contains(lines[8], "1") {
		t.Fatalf("log spacing wrong:\n%s", s)
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	if Chart("t", nil, []Series{{Name: "a", Ys: []float64{1}}}, 40, 10, false) != "" {
		t.Fatal("no xs must yield empty chart")
	}
	if Chart("t", []float64{1}, nil, 40, 10, false) != "" {
		t.Fatal("no series must yield empty chart")
	}
	if Chart("t", []float64{1}, []Series{{Name: "a", Ys: []float64{1}}}, 4, 1, false) != "" {
		t.Fatal("tiny canvas must yield empty chart")
	}
	// Constant series and single point must not divide by zero.
	if Chart("t", []float64{5}, []Series{{Name: "a", Ys: []float64{2}}}, 20, 5, false) == "" {
		t.Fatal("single point must render")
	}
	if Chart("t", []float64{1, 2}, []Series{{Name: "a", Ys: []float64{0, 0}}}, 20, 5, true) == "" {
		t.Fatal("all-zero logY must render")
	}
}
