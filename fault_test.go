package hetqr

import (
	"errors"
	"math"
	"testing"
	"time"
)

// The public fault surface: a seeded injector threaded through Factor must
// heal non-corrupting faults into a bit-identical result, and the typed
// errors must be reachable through the re-exports alone.
func TestPublicFaultInjection(t *testing.T) {
	a := RandomMatrix(3, 96, 96)
	want, err := Factor(a, Options{TileSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	inj := NewFaultInjector(FaultConfig{Seed: 2, TransientRate: 0.1, PanicRate: 0.05})
	got, err := Factor(a, Options{
		TileSize: 16, Workers: 4,
		Faults: inj,
		Retry:  RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Microsecond, MaxDelay: time.Millisecond, Budget: 128},
	})
	if err != nil {
		t.Fatalf("factor under faults: %v", err)
	}
	if d := got.R().MaxAbsDiff(want.R()); d != 0 {
		t.Fatalf("R differs from fault-free run by %g", d)
	}
	if inj.InjectedTotal() == 0 {
		t.Fatal("no faults injected — test vacuous")
	}
}

func TestPublicNonFiniteRejection(t *testing.T) {
	a := RandomMatrix(4, 64, 64)
	a.Set(1, 2, math.NaN())
	if _, err := Factor(a, Options{TileSize: 16}); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("want ErrNonFinite, got %v", err)
	}
}

func TestPublicRetryability(t *testing.T) {
	_, err := Factor(RandomMatrix(5, 64, 64), Options{
		TileSize: 16,
		Faults:   NewFaultInjector(FaultConfig{Seed: 6, TransientRate: 1}),
		Retry:    RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, Budget: 2},
	})
	if err == nil {
		t.Fatal("certain transient failure factored successfully")
	}
	if !IsRetryable(err) {
		t.Fatalf("exhausted budget not retryable: %v", err)
	}
	var pe *KernelPanicError
	if errors.As(err, &pe) {
		t.Fatalf("budget exhaustion mis-typed as kernel panic: %v", err)
	}
}
