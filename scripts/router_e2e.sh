#!/usr/bin/env bash
# Multi-process end-to-end kill test for the durable serving stack:
#
#   1. build qrserve and qrrouter (with -race so the binaries double as a
#      data-race probe under real multi-process load),
#   2. start two qrserve workers on ephemeral ports, each with its own
#      durable job store,
#   3. start qrrouter fronting both,
#   4. drive the router's closed-loop verified selftest (client SDK load),
#      and SIGKILL one worker while the load is in flight,
#   5. require the selftest to pass anyway — zero lost jobs, every result
#      verified bit-identical against a direct factorization — and the
#      router's /workers to show the victim dead.
#
# A second mode kills the ROUTING tier instead: an active/standby router
# pair (each with a durable dispatch-state store, the standby following the
# primary's journal) fronts the workers, the client load lists both
# routers, and the PRIMARY ROUTER is SIGKILLed mid-dispatch. The drill
# requires the standby to promote itself, the load to finish with zero
# lost jobs and bit-identical results, and the promoted router to have
# served every read from its journaled state — its fanout_reads counter
# must end at 0.
#
# Usage: scripts/router_e2e.sh [jobs] [worker-kill|router-kill]
#        (default: 300 worker-kill)
set -euo pipefail

JOBS="${1:-300}"
MODE="${2:-worker-kill}"
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
BIN="$WORK/bin"
mkdir -p "$BIN" "$WORK/store1" "$WORK/store2"

cleanup() {
    kill "${W1_PID:-}" "${W2_PID:-}" "${RA_PID:-}" "${RB_PID:-}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building (-race) =="
go build -race -o "$BIN/qrserve" ./cmd/qrserve
go build -race -o "$BIN/qrrouter" ./cmd/qrrouter

# start_worker <store-dir> <log-file>: prints the worker's base URL.
start_worker() {
    "$BIN/qrserve" -http 127.0.0.1:0 -store "$1" >"$2" 2>&1 &
    local pid=$!
    local url=""
    for _ in $(seq 1 100); do
        url="$(sed -n 's#^serving on \(http://[^ ]*\).*#\1#p' "$2" | head -n1)"
        [ -n "$url" ] && break
        kill -0 "$pid" 2>/dev/null || { cat "$2"; echo "worker died during startup" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$url" ] || { cat "$2"; echo "worker never printed its address" >&2; exit 1; }
    echo "$url $pid"
}

echo "== starting 2 workers with durable stores =="
read -r W1_URL W1_PID <<<"$(start_worker "$WORK/store1" "$WORK/w1.log")"
read -r W2_URL W2_PID <<<"$(start_worker "$WORK/store2" "$WORK/w2.log")"
echo "worker 1: $W1_URL (pid $W1_PID, store $WORK/store1)"
echo "worker 2: $W2_URL (pid $W2_PID, store $WORK/store2)"

# wait_dead <pid>: true once the process is gone. kill -0 is not the right
# probe: after SIGKILL the victim lingers as a zombie child of this shell
# until reaped, and kill -0 succeeds on zombies — so judge by process
# state, with a short grace for signal delivery on a loaded machine.
wait_dead() {
    local pid="$1" state
    for _ in $(seq 1 100); do
        state="$(ps -o stat= -p "$pid" 2>/dev/null | tr -d '[:space:]' || true)"
        if [ -z "$state" ] || [ "${state:0:1}" = "Z" ]; then
            return 0
        fi
        sleep 0.1
    done
    return 1
}

# start_router <args...>: starts qrrouter detached, prints "url pid". The
# log file is the last argument.
start_router() {
    local logf="${*: -1}"
    "$BIN/qrrouter" "${@:1:$#-1}" >"$logf" 2>&1 &
    local pid=$!
    local url=""
    for _ in $(seq 1 100); do
        url="$(sed -n 's#^routing on \(http://[^ ]*\).*#\1#p' "$logf" | head -n1)"
        [ -n "$url" ] && break
        kill -0 "$pid" 2>/dev/null || { cat "$logf"; echo "router died during startup" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$url" ] || { cat "$logf"; echo "router never printed its address" >&2; exit 1; }
    echo "$url $pid"
}

if [ "$MODE" = "router-kill" ]; then
    echo "== starting active/standby router pair with dispatch-state stores =="
    mkdir -p "$WORK/rstateA" "$WORK/rstateB"
    read -r RA_URL RA_PID <<<"$(start_router -workers "$W1_URL,$W2_URL" -http 127.0.0.1:0 \
        -health 100ms -state "$WORK/rstateA" -log text "$WORK/ra.log")"
    echo "router A (primary): $RA_URL (pid $RA_PID)"
    read -r RB_URL RB_PID <<<"$(start_router -workers "$W1_URL,$W2_URL" -http 127.0.0.1:0 \
        -health 100ms -state "$WORK/rstateB" \
        -peer "$RA_URL" -peer-interval 100ms -peer-dead-after 3 -log text "$WORK/rb.log")"
    echo "router B (standby): $RB_URL (pid $RB_PID)"

    echo "== client load against both routers, SIGKILL of the primary mid-dispatch =="
    # The killer waits until the primary has dispatched at least one job,
    # then SIGKILLs it — the standby must pick up from the journal it has
    # been following, with no drain or handover of any kind.
    (
        for _ in $(seq 1 400); do
            if curl -sf "$RA_URL/workers" 2>/dev/null | grep -q '"dispatched":[1-9]'; then
                break
            fi
            sleep 0.05
        done
        echo "== SIGKILL primary router (pid $RA_PID) ==" >&2
        kill -9 "$RA_PID" 2>/dev/null || true
    ) &
    KILLER_PID=$!

    DRIVE_LOG="$WORK/drive.log"
    if ! "$BIN/qrrouter" -drive "$RA_URL,$RB_URL" -jobs "$JOBS" -clients 8 -verify 1 | tee "$DRIVE_LOG"; then
        echo "FAIL: client load lost or mis-verified jobs across the router failover" >&2
        tail -n 40 "$WORK/rb.log" >&2
        exit 1
    fi
    wait "$KILLER_PID" 2>/dev/null || true

    if ! wait_dead "$RA_PID"; then
        echo "FAIL: primary router survived the SIGKILL" >&2
        exit 1
    fi
    if ! grep -q "selftest ok" "$DRIVE_LOG"; then
        echo "FAIL: drive did not report ok" >&2
        exit 1
    fi
    # The standby must have promoted itself...
    if ! curl -sf "$RB_URL/role" | grep -q '"role":"primary"'; then
        echo "FAIL: standby did not promote to primary" >&2
        curl -s "$RB_URL/role" >&2 || true
        exit 1
    fi
    # ...and served every read from its journaled/mirrored state: the
    # fan-out fallback (asking every worker for an unknown id) must never
    # have fired on the promoted router.
    METRICS="$(curl -sf "$RB_URL/metrics?format=table")"
    if ! grep -Eq 'router\.fanout_reads +0\b' <<<"$METRICS"; then
        echo "FAIL: promoted router used fan-out reads instead of journaled state:" >&2
        grep -E 'router\.' <<<"$METRICS" >&2 || true
        exit 1
    fi
    if ! grep -Eq 'router\.promotions +1\b' <<<"$METRICS"; then
        echo "FAIL: promoted router does not record its promotion" >&2
        exit 1
    fi
    echo "== e2e ok: $JOBS jobs, primary router SIGKILLed, standby promoted, zero lost, no fan-out =="
    exit 0
fi

echo "== router selftest with a mid-load SIGKILL of worker 1 =="
# The killer watches the router's /workers until worker 1 has accepted at
# least one job, then SIGKILLs it — no drain, no flush: whatever it had in
# flight exists only in its WAL and in the router's failover table.
ROUTER_LOG="$WORK/router.log"
: >"$ROUTER_LOG"
(
    RURL=""
    for _ in $(seq 1 200); do
        RURL="$(sed -n 's#^routing on \(http://[^ ]*\).*#\1#p' "$ROUTER_LOG" | head -n1)"
        [ -n "$RURL" ] && break
        sleep 0.1
    done
    for _ in $(seq 1 400); do
        if curl -sf "$RURL/workers" 2>/dev/null | grep -q "\"url\":\"$W1_URL\"[^}]*\"dispatched\":[1-9]"; then
            break
        fi
        sleep 0.05
    done
    echo "== SIGKILL worker 1 (pid $W1_PID) ==" >&2
    kill -9 "$W1_PID" 2>/dev/null || true
) &
KILLER_PID=$!

if ! "$BIN/qrrouter" -workers "$W1_URL,$W2_URL" -http 127.0.0.1:0 \
    -health 100ms -selftest -jobs "$JOBS" -clients 8 -verify 1 | tee "$ROUTER_LOG"; then
    echo "FAIL: router selftest lost or mis-verified jobs after worker kill" >&2
    exit 1
fi
wait "$KILLER_PID" 2>/dev/null || true

# The kill must actually have landed mid-run for the test to mean anything.
if ! wait_dead "$W1_PID"; then
    echo "FAIL: worker 1 survived the SIGKILL" >&2
    exit 1
fi
if ! grep -q "selftest ok" "$ROUTER_LOG"; then
    echo "FAIL: selftest did not report ok" >&2
    exit 1
fi
# Failover visible in the router's own accounting.
if ! grep -Eq 'router\.failover_redispatches +[1-9]' "$ROUTER_LOG"; then
    echo "NOTE: no failover re-dispatches recorded (all of worker 1's jobs finished pre-kill)" >&2
fi

echo "== e2e ok: $JOBS jobs, one worker SIGKILLed, zero lost =="
