#!/usr/bin/env bash
# Multi-process end-to-end kill test for the durable serving stack:
#
#   1. build qrserve and qrrouter (with -race so the binaries double as a
#      data-race probe under real multi-process load),
#   2. start two qrserve workers on ephemeral ports, each with its own
#      durable job store,
#   3. start qrrouter fronting both,
#   4. drive the router's closed-loop verified selftest (client SDK load),
#      and SIGKILL one worker while the load is in flight,
#   5. require the selftest to pass anyway — zero lost jobs, every result
#      verified bit-identical against a direct factorization — and the
#      router's /workers to show the victim dead.
#
# Usage: scripts/router_e2e.sh [jobs]   (default 300)
set -euo pipefail

JOBS="${1:-300}"
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
BIN="$WORK/bin"
mkdir -p "$BIN" "$WORK/store1" "$WORK/store2"

cleanup() {
    kill "${W1_PID:-}" "${W2_PID:-}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building (-race) =="
go build -race -o "$BIN/qrserve" ./cmd/qrserve
go build -race -o "$BIN/qrrouter" ./cmd/qrrouter

# start_worker <store-dir> <log-file>: prints the worker's base URL.
start_worker() {
    "$BIN/qrserve" -http 127.0.0.1:0 -store "$1" >"$2" 2>&1 &
    local pid=$!
    local url=""
    for _ in $(seq 1 100); do
        url="$(sed -n 's#^serving on \(http://[^ ]*\).*#\1#p' "$2" | head -n1)"
        [ -n "$url" ] && break
        kill -0 "$pid" 2>/dev/null || { cat "$2"; echo "worker died during startup" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$url" ] || { cat "$2"; echo "worker never printed its address" >&2; exit 1; }
    echo "$url $pid"
}

echo "== starting 2 workers with durable stores =="
read -r W1_URL W1_PID <<<"$(start_worker "$WORK/store1" "$WORK/w1.log")"
read -r W2_URL W2_PID <<<"$(start_worker "$WORK/store2" "$WORK/w2.log")"
echo "worker 1: $W1_URL (pid $W1_PID, store $WORK/store1)"
echo "worker 2: $W2_URL (pid $W2_PID, store $WORK/store2)"

echo "== router selftest with a mid-load SIGKILL of worker 1 =="
# The killer watches the router's /workers until worker 1 has accepted at
# least one job, then SIGKILLs it — no drain, no flush: whatever it had in
# flight exists only in its WAL and in the router's failover table.
ROUTER_LOG="$WORK/router.log"
: >"$ROUTER_LOG"
(
    RURL=""
    for _ in $(seq 1 200); do
        RURL="$(sed -n 's#^routing on \(http://[^ ]*\).*#\1#p' "$ROUTER_LOG" | head -n1)"
        [ -n "$RURL" ] && break
        sleep 0.1
    done
    for _ in $(seq 1 400); do
        if curl -sf "$RURL/workers" 2>/dev/null | grep -q "\"url\":\"$W1_URL\"[^}]*\"dispatched\":[1-9]"; then
            break
        fi
        sleep 0.05
    done
    echo "== SIGKILL worker 1 (pid $W1_PID) ==" >&2
    kill -9 "$W1_PID" 2>/dev/null || true
) &
KILLER_PID=$!

if ! "$BIN/qrrouter" -workers "$W1_URL,$W2_URL" -http 127.0.0.1:0 \
    -health 100ms -selftest -jobs "$JOBS" -clients 8 -verify 1 | tee "$ROUTER_LOG"; then
    echo "FAIL: router selftest lost or mis-verified jobs after worker kill" >&2
    exit 1
fi
wait "$KILLER_PID" 2>/dev/null || true

# The kill must actually have landed mid-run for the test to mean anything.
# kill -0 is not the right probe here: after SIGKILL the worker lingers as
# a zombie child of this shell until reaped, and kill -0 succeeds on
# zombies — so judge by process state, with a short grace for the kernel
# to deliver the signal on a loaded machine.
dead=0
for _ in $(seq 1 100); do
    state="$(ps -o stat= -p "$W1_PID" 2>/dev/null | tr -d '[:space:]' || true)"
    if [ -z "$state" ] || [ "${state:0:1}" = "Z" ]; then
        dead=1
        break
    fi
    sleep 0.1
done
if [ "$dead" != 1 ]; then
    echo "FAIL: worker 1 survived the SIGKILL" >&2
    exit 1
fi
if ! grep -q "selftest ok" "$ROUTER_LOG"; then
    echo "FAIL: selftest did not report ok" >&2
    exit 1
fi
# Failover visible in the router's own accounting.
if ! grep -Eq 'router\.failover_redispatches +[1-9]' "$ROUTER_LOG"; then
    echo "NOTE: no failover re-dispatches recorded (all of worker 1's jobs finished pre-kill)" >&2
fi

echo "== e2e ok: $JOBS jobs, one worker SIGKILLed, zero lost =="
