package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/workload"
)

// newServer spins up a real serve.Server behind httptest and a client
// pointed at it — the integration harness every test here shares.
func newServer(t *testing.T, cfg serve.Config) (*httptest.Server, *client.Client) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler(""))
	t.Cleanup(func() { ts.Close(); s.Close() })
	c, err := client.New(client.Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	return ts, c
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestClientFactorMatchesDirect(t *testing.T) {
	_, c := newServer(t, serve.Config{})
	res, err := c.Factor(testCtx(t), client.JobSpec{Rows: 64, Cols: 48, Seed: 7})
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	direct, err := runtime.Factor(workload.Uniform(7, 64, 48), runtime.Options{TileSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	r := direct.R()
	if res.Rows != r.Rows || res.Cols != r.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", res.Rows, res.Cols, r.Rows, r.Cols)
	}
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < r.Cols; j++ {
			if res.R[i][j] != r.At(i, j) {
				t.Fatalf("R[%d][%d] = %g, want %g", i, j, res.R[i][j], r.At(i, j))
			}
		}
	}
}

func TestClientSubmitStatusWait(t *testing.T) {
	_, c := newServer(t, serve.Config{})
	ctx := testCtx(t)
	job, err := c.Submit(ctx, client.JobSpec{Rows: 32, Cols: 32, Seed: 3, TraceID: "trace-sdk-1"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.TraceID != "trace-sdk-1" {
		t.Fatalf("trace id %q not propagated", job.TraceID)
	}
	if job.Class == "" {
		t.Fatal("class missing from submit response")
	}
	if _, err := job.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	st, err := c.Status(ctx, job.ID)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if !st.Terminal() || st.Status != "done" {
		t.Fatalf("status = %+v, want done", st)
	}
	if st.TraceID != "trace-sdk-1" {
		t.Fatalf("status trace id = %q", st.TraceID)
	}
}

func TestClientInlineData(t *testing.T) {
	_, c := newServer(t, serve.Config{})
	data := make([]float64, 32*32)
	for i := range data {
		data[i] = float64(i%5) - 2
	}
	res, err := c.Factor(testCtx(t), client.JobSpec{Rows: 32, Cols: 32, Data: data})
	if err != nil {
		t.Fatalf("Factor with inline data: %v", err)
	}
	if res.Rows != 32 || res.Cols != 32 {
		t.Fatalf("shape %dx%d", res.Rows, res.Cols)
	}
}

func TestClientIdempotencyKey(t *testing.T) {
	_, c := newServer(t, serve.Config{})
	ctx := testCtx(t)
	j1, err := c.Submit(ctx, client.JobSpec{ID: "idem-1", Rows: 32, Cols: 32, Seed: 1})
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// The resubmission is refused but still returns a usable handle to the
	// existing job — the caller can go straight to Wait.
	j2, err := c.Submit(ctx, client.JobSpec{ID: "idem-1", Rows: 32, Cols: 32, Seed: 99})
	if !errors.Is(err, client.ErrDuplicate) {
		t.Fatalf("second submit: got %v, want ErrDuplicate", err)
	}
	if j2 == nil || j2.ID != "idem-1" {
		t.Fatalf("duplicate handle = %+v, want id idem-1", j2)
	}
	r1, err := j1.Wait(ctx)
	if err != nil {
		t.Fatalf("wait first: %v", err)
	}
	r2, err := j2.Wait(ctx)
	if err != nil {
		t.Fatalf("wait duplicate handle: %v", err)
	}
	// Both handles resolve to the one job: bit-identical results.
	for i := range r1.R {
		for k := range r1.R[i] {
			if r1.R[i][k] != r2.R[i][k] {
				t.Fatal("duplicate handle returned a different result")
			}
		}
	}
}

func TestClientNotFound(t *testing.T) {
	_, c := newServer(t, serve.Config{})
	if _, err := c.Status(testCtx(t), "no-such-job"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	var apiErr *client.APIError
	_, err := c.Result(testCtx(t), "no-such-job")
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusNotFound {
		t.Fatalf("result: got %v, want 404 APIError", err)
	}
}

func TestClientResultNotDone(t *testing.T) {
	// A job stuck behind a long one: its result request must say "not
	// finished", not fabricate an answer.
	_, c := newServer(t, serve.Config{Executors: 1, Workers: 1, QueueCapacity: 8})
	ctx := testCtx(t)
	if _, err := c.Submit(ctx, client.JobSpec{ID: "long", Rows: 512, Cols: 512, Seed: 1}); err != nil {
		t.Fatalf("submit long: %v", err)
	}
	job, err := c.Submit(ctx, client.JobSpec{ID: "queued", Rows: 512, Cols: 512, Seed: 2})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	if _, err := c.Result(ctx, "queued"); !errors.Is(err, client.ErrNotDone) {
		t.Fatalf("got %v, want ErrNotDone", err)
	}
	if _, err := job.Wait(ctx); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

// TestClientRetriesBackpressure: the client absorbs 429s (honouring
// Retry-After) without surfacing them to the caller, and gives up with
// ErrOverloaded only past the attempt budget.
func TestClientRetriesBackpressure(t *testing.T) {
	var rejects atomic.Int64
	upstream := serve.New(serve.Config{})
	defer upstream.Close()
	inner := upstream.Handler("")
	// A shim that refuses the first two submissions the way an overloaded
	// server would, then forwards — deterministic backpressure without
	// having to time a real queue overflow.
	shim := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && rejects.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(shim)
	defer ts.Close()

	c, err := client.New(client.Config{
		BaseURL: ts.URL,
		Retry:   client.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Factor(testCtx(t), client.JobSpec{Rows: 32, Cols: 32, Seed: 4}); err != nil {
		t.Fatalf("Factor through backpressure: %v", err)
	}
	if got := rejects.Load(); got < 3 {
		t.Fatalf("shim saw %d submissions, want ≥ 3 (two rejected, one through)", got)
	}

	// An always-429 server exhausts the budget into ErrOverloaded.
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer always.Close()
	c2, err := client.New(client.Config{
		BaseURL: always.URL,
		Retry:   client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Submit(testCtx(t), client.JobSpec{Rows: 8, Cols: 8}); !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
}

func TestClientContextCancellation(t *testing.T) {
	_, c := newServer(t, serve.Config{Executors: 1, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	job, err := c.Submit(ctx, client.JobSpec{Rows: 512, Cols: 512, Seed: 9})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	cancel()
	if _, err := job.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after cancel: got %v, want context.Canceled", err)
	}
}

func TestClientStream(t *testing.T) {
	_, c := newServer(t, serve.Config{})
	ctx := testCtx(t)
	const n = 12
	specs := make(chan client.JobSpec, n)
	for i := 0; i < n; i++ {
		specs <- client.JobSpec{ID: fmt.Sprintf("stream-%d", i), Rows: 32, Cols: 32, Seed: int64(i)}
	}
	close(specs)
	got := map[string]bool{}
	for out := range c.Stream(ctx, specs, 4) {
		if out.Err != nil {
			t.Fatalf("stream job %s: %v", out.Spec.ID, out.Err)
		}
		if out.Result == nil || out.Result.Rows != 32 {
			t.Fatalf("stream job %s: bad result", out.Spec.ID)
		}
		got[out.Spec.ID] = true
	}
	if len(got) != n {
		t.Fatalf("stream delivered %d outcomes, want %d", len(got), n)
	}
}

func TestClientBadConfig(t *testing.T) {
	if _, err := client.New(client.Config{}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
	if _, err := client.New(client.Config{BaseURL: "ftp://x"}); err == nil {
		t.Fatal("non-http BaseURL accepted")
	}
}

// TestClientAutoMintsIdempotencyKey: an id-less JobSpec gets a client-minted
// key before the first attempt, so a retry after an ambiguous transport
// failure (response lost after the server accepted) re-presents the same key
// and can never double-accept the job.
func TestClientAutoMintsIdempotencyKey(t *testing.T) {
	upstream := serve.New(serve.Config{})
	defer upstream.Close()
	inner := upstream.Handler("")

	var mu sync.Mutex
	var submittedIDs []string
	var posts atomic.Int64
	// The shim lets the first submission reach the server, then severs the
	// connection before the 202 escapes — the exact ambiguous failure
	// idempotency keys exist for.
	shim := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			inner.ServeHTTP(w, r)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		var req struct {
			ID string `json:"id"`
		}
		_ = json.Unmarshal(body, &req)
		mu.Lock()
		submittedIDs = append(submittedIDs, req.ID)
		mu.Unlock()
		r.Body = io.NopCloser(bytes.NewReader(body))
		if posts.Add(1) == 1 {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			if rec.Code != http.StatusAccepted {
				t.Errorf("first submission not accepted: %d", rec.Code)
			}
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Error(err)
				return
			}
			conn.Close() // lose the response on the wire
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(shim)
	defer ts.Close()

	c, err := client.New(client.Config{
		BaseURL: ts.URL,
		Retry:   client.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	job, err := c.Submit(ctx, client.JobSpec{Rows: 32, Cols: 32, Seed: 11})
	if err != nil {
		t.Fatalf("submit through lost response: %v", err)
	}
	if !strings.HasPrefix(job.ID, "cl-") {
		t.Fatalf("job id %q, want a client-minted cl- key", job.ID)
	}
	res, err := job.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	direct, err := runtime.Factor(workload.Uniform(11, 32, 32), runtime.Options{TileSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	dr := direct.R()
	for i := 0; i < dr.Rows; i++ {
		for k := 0; k < dr.Cols; k++ {
			if res.R[i][k] != dr.At(i, k) {
				t.Fatalf("R[%d][%d] mismatch after retried submission", i, k)
			}
		}
	}
	// The retry presented the same minted key — one logical job, not two.
	mu.Lock()
	defer mu.Unlock()
	if len(submittedIDs) < 2 {
		t.Fatalf("shim saw %d submissions, want the original plus a retry", len(submittedIDs))
	}
	for _, id := range submittedIDs {
		if id != submittedIDs[0] {
			t.Fatalf("retry changed the idempotency key: %v", submittedIDs)
		}
	}
}
