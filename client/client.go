// Package client is the typed Go SDK for the QR job service: it speaks the
// HTTP API of both qrserve workers and the qrrouter front end (the two are
// wire-compatible), with the retry discipline a production caller needs
// baked in — capped-exponential jittered backoff that honours Retry-After,
// context-aware cancellation everywhere, idempotency keys on every
// submission (auto-minted when the caller does not supply one, so retried
// submits can never double-accept), and X-Trace-Id propagation so a
// client-side id follows the job through every server hop and into /traces.
//
// The client also speaks to highly-available router pairs: Config.Endpoints
// lists every router, and the client sticks to whichever one answers,
// rotating on transport failure or on an explicit standby refusal (503 +
// "X-Router-Role: standby"). A standby hop is free — it does not burn the
// retry budget — so a failover is one extra round trip, not a backoff.
//
// The verbs:
//
//	c, _ := client.New(client.Config{BaseURL: "http://localhost:8080"})
//	job, err := c.Submit(ctx, client.JobSpec{Rows: 512, Cols: 512, Seed: 1})
//	res, err := job.Wait(ctx)                  // poll to terminal, fetch R
//	res, err := c.Factor(ctx, spec)            // Submit + Wait in one call
//	out := c.Stream(ctx, specs, 8)             // bounded-concurrency pipeline
//
// Error taxonomy: sentinel errors (ErrDuplicate, ErrOverloaded, ErrNotFound,
// ErrNotDone) match with errors.Is through the typed *APIError, and a job
// that reached a terminal failure surfaces as *JobError with the server's
// Retryable verdict (HTTP 503 + Retry-After on the result endpoint means
// "resubmit", not "the input was bad").
package client

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors, matched with errors.Is against everything the client
// returns.
var (
	// ErrDuplicate: the submission's idempotency key is already taken (HTTP
	// 409). Submit additionally returns a handle to the existing job.
	ErrDuplicate = errors.New("client: duplicate job id")
	// ErrOverloaded: admission kept refusing with 429 past the retry budget.
	ErrOverloaded = errors.New("client: server overloaded")
	// ErrNotFound: the job id is unknown to the server (HTTP 404).
	ErrNotFound = errors.New("client: job not found")
	// ErrNotDone: the result was requested before the job finished.
	ErrNotDone = errors.New("client: job not finished")
)

// APIError is a non-2xx server response.
type APIError struct {
	// Code is the HTTP status.
	Code int
	// Message is the server's error body.
	Message string
	// RetryAfter is the parsed Retry-After hint (0 when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Message)
}

// Is maps status codes onto the sentinel errors.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrDuplicate:
		return e.Code == http.StatusConflict
	case ErrOverloaded:
		return e.Code == http.StatusTooManyRequests
	case ErrNotFound:
		return e.Code == http.StatusNotFound
	}
	return false
}

// JobError is a job that reached a terminal failure on the server.
type JobError struct {
	ID      string
	Message string
	// Retryable: the server judged the failure transient (exhausted retry
	// budget, lost device) — resubmitting the same input should succeed.
	Retryable bool
	// RetryAfter is the server's resubmission hint when Retryable.
	RetryAfter time.Duration
}

func (e *JobError) Error() string {
	if e.Retryable {
		return fmt.Sprintf("client: job %s failed (retryable, resubmit after %v): %s", e.ID, e.RetryAfter, e.Message)
	}
	return fmt.Sprintf("client: job %s failed: %s", e.ID, e.Message)
}

// RetryPolicy is capped exponential backoff with full jitter. A server's
// Retry-After always overrides the computed delay.
type RetryPolicy struct {
	// MaxAttempts bounds tries per request (first try included). Default 4.
	MaxAttempts int
	// BaseDelay seeds the exponential schedule (default 50ms); MaxDelay
	// caps it (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// delay computes the wait before attempt (0-based) number attempt+1.
func (p RetryPolicy) delay(attempt int, hint time.Duration, rng *rand.Rand) time.Duration {
	if hint > 0 {
		if hint > p.MaxDelay {
			return p.MaxDelay
		}
		return hint
	}
	d := p.BaseDelay << uint(attempt)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	// Full jitter: uniform in (0, d] — decorrelates a retrying fleet.
	return time.Duration(rng.Int63n(int64(d))) + 1
}

// roleHeader is the router's HA-role response header: a standby refuses
// job traffic with 503 and this header set to "standby", which tells the
// client to rotate endpoints instead of backing off.
const roleHeader = "X-Router-Role"

// Config configures a Client.
type Config struct {
	// BaseURL roots the API, e.g. "http://localhost:8080" — a qrserve
	// worker or a qrrouter front end.
	BaseURL string
	// Endpoints lists additional base URLs (an HA router pair, or several
	// workers). The client is sticky: it keeps using the endpoint that
	// answers, and rotates to the next on a transport failure or a standby
	// refusal. BaseURL, when set, is simply the first endpoint.
	Endpoints []string
	// HTTPClient overrides the transport (default: http.Client with a 30s
	// overall timeout; per-call contexts cut it shorter).
	HTTPClient *http.Client
	// Retry tunes the backoff schedule for 429/503/transport errors.
	Retry RetryPolicy
	// PollInterval is Wait's initial status-poll spacing (default 5ms; it
	// backs off to 50× that as the job keeps running).
	PollInterval time.Duration
}

// Client is a QR job service client. Safe for concurrent use.
type Client struct {
	endpoints []string
	// active indexes the endpoint in use. Rotation is a CAS, so concurrent
	// callers observing the same failure advance it exactly once.
	active atomic.Int32
	hc     *http.Client
	retry  RetryPolicy
	poll   time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// New validates cfg and returns a client.
func New(cfg Config) (*Client, error) {
	raw := make([]string, 0, 1+len(cfg.Endpoints))
	if cfg.BaseURL != "" {
		raw = append(raw, cfg.BaseURL)
	}
	raw = append(raw, cfg.Endpoints...)
	if len(raw) == 0 {
		return nil, errors.New("client: BaseURL or Endpoints required")
	}
	endpoints := make([]string, 0, len(raw))
	for _, u := range raw {
		base := strings.TrimRight(u, "/")
		if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
			return nil, fmt.Errorf("client: endpoint %q must be http(s)", u)
		}
		endpoints = append(endpoints, base)
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	return &Client{
		endpoints: endpoints,
		hc:        hc,
		retry:     cfg.Retry.normalize(),
		poll:      poll,
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
	}, nil
}

// endpoint returns the base URL currently in use.
func (c *Client) endpoint() string {
	return c.endpoints[int(c.active.Load())%len(c.endpoints)]
}

// rotateFrom advances to the next endpoint — but only if base is still the
// active one, so a fleet of goroutines that all saw the same dead endpoint
// rotates once, not once each (which would orbit past the healthy one).
func (c *Client) rotateFrom(base string) {
	if len(c.endpoints) < 2 {
		return
	}
	cur := c.active.Load()
	if c.endpoints[int(cur)%len(c.endpoints)] == base {
		c.active.CompareAndSwap(cur, (cur+1)%int32(len(c.endpoints)))
	}
}

// JobSpec describes one factorization submission.
type JobSpec struct {
	// ID is an optional idempotency key: resubmitting the same key can
	// never double-accept the job (the server answers 409, which Submit
	// folds into ErrDuplicate + a handle to the existing job). When empty,
	// Submit mints a random key of its own ("cl-<hex>") before the first
	// attempt, so its transparent retries after an ambiguous transport
	// failure cannot double-accept the job either; the minted key comes
	// back as Job.ID.
	ID string
	// Rows×Cols is the matrix shape; Tile and Tree default server-side.
	Rows, Cols int
	Tile       int
	Tree       string
	// Data is the row-major payload; when nil the server generates the
	// reproducible workload.Uniform(Seed) matrix instead.
	Data []float64
	Seed int64
	// Timeout imposes a per-job deadline measured from admission.
	Timeout time.Duration
	// TraceID proposes the X-Trace-Id (server mints one when empty or
	// invalid; the effective id comes back on the Job handle).
	TraceID string
}

// Status is a job's server-side view.
type Status struct {
	ID        string  `json:"id"`
	ClientID  string  `json:"clientID"`
	Status    string  `json:"status"`
	Class     string  `json:"class"`
	TraceID   string  `json:"traceID"`
	Error     string  `json:"error"`
	ElapsedMS float64 `json:"elapsedMS"`
	Recovered bool    `json:"recovered"`
}

// Terminal reports whether the job has finished either way.
func (s Status) Terminal() bool { return s.Status == "done" || s.Status == "failed" }

// Result is a completed factorization's R factor.
type Result struct {
	ID   string      `json:"id"`
	Rows int         `json:"rows"`
	Cols int         `json:"cols"`
	R    [][]float64 `json:"r"`
}

// Job is a submitted job's handle.
type Job struct {
	c *Client
	// ID is the id the server knows the job by (the idempotency key when
	// one was supplied, the server-assigned id otherwise).
	ID string
	// TraceID is the effective X-Trace-Id (follow it at /traces/{id}).
	TraceID string
	// Class is the server's size-class key for the job.
	Class string
}

// Wait blocks until the job finishes, then returns its R factor.
func (j *Job) Wait(ctx context.Context) (*Result, error) { return j.c.Wait(ctx, j.ID) }

// Status fetches the job's current state.
func (j *Job) Status(ctx context.Context) (Status, error) { return j.c.Status(ctx, j.ID) }

// Submit sends one factorization request, retrying transparently through
// overload (429 + Retry-After) and transport failures. Every submission
// carries an idempotency key — spec.ID, or a freshly minted one when the
// caller left it empty — so a retry after a lost response can never
// double-accept the job. On ErrDuplicate (a caller-supplied id already
// taken) the returned handle refers to the existing job with that id, so an
// idempotent resubmission can switch straight to Wait; a 409 against a
// minted key just means an earlier attempt of this same call was accepted,
// and is folded into success.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*Job, error) {
	id, minted := spec.ID, false
	if id == "" {
		id, minted = mintKey(), true
	}
	body := map[string]any{"rows": spec.Rows, "cols": spec.Cols, "id": id}
	if spec.Tile > 0 {
		body["tile"] = spec.Tile
	}
	if spec.Tree != "" {
		body["tree"] = spec.Tree
	}
	if spec.Data != nil {
		body["data"] = spec.Data
	} else {
		body["seed"] = spec.Seed
	}
	if spec.Timeout > 0 {
		body["timeoutMS"] = int(spec.Timeout / time.Millisecond)
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("client: encode submission: %w", err)
	}
	hdr := http.Header{}
	if spec.TraceID != "" {
		hdr.Set("X-Trace-Id", spec.TraceID)
	}
	var st Status
	resp, err := c.do(ctx, http.MethodPost, "/jobs", payload, hdr, &st)
	if err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Code == http.StatusConflict {
			// The id is taken — hand back the existing job so the caller
			// can poll it. The 409 body carries its status when resolvable.
			j := &Job{c: c, ID: id, TraceID: st.TraceID, Class: st.Class}
			if minted {
				// Nobody else knows a minted key: the conflict is this
				// call's own earlier attempt, accepted before the response
				// was lost. That is the idempotent-retry path working.
				return j, nil
			}
			return j, fmt.Errorf("%w: %q", ErrDuplicate, id)
		}
		return nil, err
	}
	if st.ClientID != "" {
		id = st.ClientID
	}
	return &Job{c: c, ID: id, TraceID: resp.Header.Get("X-Trace-Id"), Class: st.Class}, nil
}

// mintKey generates a client-side idempotency key for an id-less JobSpec:
// minted once per Submit call, before the first attempt, so every retry of
// that call presents the same key.
func mintKey() string {
	var b [9]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "cl-" + strconv.FormatInt(time.Now().UnixNano(), 36)
	}
	return "cl-" + hex.EncodeToString(b[:])
}

// Status fetches a job's state by id.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var st Status
	_, err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, nil, &st)
	return st, err
}

// Result fetches a completed job's R factor. ErrNotDone while the job is
// still queued or running; *JobError when it failed.
func (c *Client) Result(ctx context.Context, id string) (*Result, error) {
	var res Result
	_, err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/result", nil, nil, &res)
	if err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			switch apiErr.Code {
			case http.StatusConflict:
				return nil, fmt.Errorf("%w: %s", ErrNotDone, id)
			case http.StatusUnprocessableEntity:
				return nil, &JobError{ID: id, Message: apiErr.Message}
			case http.StatusServiceUnavailable:
				return nil, &JobError{ID: id, Message: apiErr.Message, Retryable: true, RetryAfter: apiErr.RetryAfter}
			}
		}
		return nil, err
	}
	return &res, nil
}

// Wait polls a job to a terminal state (context-bounded), then returns its
// result. The poll spacing starts at Config.PollInterval and backs off.
func (c *Client) Wait(ctx context.Context, id string) (*Result, error) {
	interval := c.poll
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Terminal() {
			if st.Status == "failed" && st.Error != "" {
				// The result endpoint distinguishes retryable failures;
				// fetch it for the typed error.
				_, rerr := c.Result(ctx, id)
				var je *JobError
				if errors.As(rerr, &je) {
					return nil, je
				}
				return nil, &JobError{ID: id, Message: st.Error}
			}
			return c.Result(ctx, id)
		}
		if err := c.sleep(ctx, interval); err != nil {
			return nil, err
		}
		if interval < 50*c.poll {
			interval += interval / 2
		}
	}
}

// Factor is Submit + Wait: one call from matrix spec to R factor.
func (c *Client) Factor(ctx context.Context, spec JobSpec) (*Result, error) {
	j, err := c.Submit(ctx, spec)
	if err != nil && !errors.Is(err, ErrDuplicate) {
		return nil, err
	}
	return j.Wait(ctx)
}

// Outcome is one Stream element: the spec with its job's final disposition.
type Outcome struct {
	Spec   JobSpec
	Job    *Job
	Result *Result
	Err    error
}

// Stream pushes a stream of specs through the service with bounded
// concurrency, delivering one Outcome per spec (order not guaranteed). The
// returned channel closes when specs is closed and every in-flight job has
// finished, or when ctx fires.
func (c *Client) Stream(ctx context.Context, specs <-chan JobSpec, concurrency int) <-chan Outcome {
	if concurrency <= 0 {
		concurrency = 4
	}
	out := make(chan Outcome)
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var spec JobSpec
				var ok bool
				select {
				case <-ctx.Done():
					return
				case spec, ok = <-specs:
					if !ok {
						return
					}
				}
				o := Outcome{Spec: spec}
				o.Job, o.Err = c.Submit(ctx, spec)
				if o.Err == nil || errors.Is(o.Err, ErrDuplicate) {
					o.Result, o.Err = o.Job.Wait(ctx)
				}
				select {
				case out <- o:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(out) }()
	return out
}

// sleep blocks for d or until ctx fires, whichever comes first — the
// context-aware form of every backoff and poll wait in this package. A
// stopped timer (rather than time.After) keeps a cancelled wait from
// leaking its timer until it would have fired.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do performs one API call with the retry policy: 429 and 503 responses
// (honouring Retry-After) and transport errors are retried with jittered
// backoff; other failures return immediately as *APIError. On success the
// body is decoded into v when v is non-nil.
//
// With multiple endpoints configured, a transport failure rotates to the
// next endpoint before the backed-off retry, and a standby refusal (503 +
// X-Router-Role: standby) rotates and retries immediately — the standby
// told us exactly where not to send traffic, so the hop is free rather
// than charged against the attempt budget. At most len(endpoints)-1 free
// hops per attempt: a full circle of standbys (mid-promotion) degrades to
// the normal 503 backoff, which lands after the promotion.
func (c *Client) do(ctx context.Context, method, path string, body []byte, hdr http.Header, v any) (*http.Response, error) {
	var lastErr error
	freeHops := 0
	for attempt := 0; attempt < c.retry.MaxAttempts; {
		base := c.endpoint()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
		if err != nil {
			return nil, fmt.Errorf("client: build request: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		for k, vs := range hdr {
			for _, h := range vs {
				req.Header.Add(k, h)
			}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			c.rotateFrom(base)
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
			if err := c.backoff(ctx, &attempt, lastErr); err != nil {
				return nil, err
			}
			continue // transport error: retry (on the next endpoint, if any)
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if v != nil {
				err := json.NewDecoder(resp.Body).Decode(v)
				resp.Body.Close()
				if err != nil {
					return nil, fmt.Errorf("client: decode %s %s: %w", method, path, err)
				}
			} else {
				resp.Body.Close()
			}
			return resp, nil
		}
		standby := resp.Header.Get(roleHeader) == "standby"
		apiErr := readAPIError(resp, v)
		lastErr = apiErr
		if standby && freeHops < len(c.endpoints)-1 {
			c.rotateFrom(base)
			freeHops++
			continue
		}
		if apiErr.Code == http.StatusTooManyRequests || apiErr.Code == http.StatusServiceUnavailable {
			freeHops = 0
			if err := c.backoff(ctx, &attempt, lastErr); err != nil {
				return nil, err
			}
			continue // backpressure: honour Retry-After and try again
		}
		return nil, apiErr
	}
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.Code == http.StatusTooManyRequests {
		return nil, fmt.Errorf("%w after %d attempts: %v", ErrOverloaded, c.retry.MaxAttempts, lastErr)
	}
	return nil, fmt.Errorf("client: giving up after %d attempts: %w", c.retry.MaxAttempts, lastErr)
}

// backoff charges one attempt and, if budget remains, sleeps the jittered
// delay (or the server's Retry-After hint carried on lastErr).
func (c *Client) backoff(ctx context.Context, attempt *int, lastErr error) error {
	*attempt++
	if *attempt >= c.retry.MaxAttempts {
		return nil // the loop condition ends the call with lastErr
	}
	var hint time.Duration
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) {
		hint = apiErr.RetryAfter
	}
	c.mu.Lock()
	d := c.retry.delay(*attempt-1, hint, c.rng)
	c.mu.Unlock()
	return c.sleep(ctx, d)
}

// readAPIError drains a non-2xx response into an *APIError. When v is
// non-nil the body is also decoded into it — some error responses (409)
// carry the existing job's status alongside the refusal.
func readAPIError(resp *http.Response, v any) *APIError {
	defer resp.Body.Close()
	apiErr := &APIError{Code: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		apiErr.Message = "unreadable error body"
		return apiErr
	}
	var em struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &em) == nil && em.Error != "" {
		apiErr.Message = em.Error
	} else {
		apiErr.Message = strings.TrimSpace(string(b))
	}
	if v != nil {
		_ = json.Unmarshal(b, v)
	}
	return apiErr
}
