package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
)

// TestClientCancelDuringBackoff: a canceled context must cut a backoff
// sleep short, not wait it out. The server's Retry-After pushes the retry
// delay well past the cancellation point, so a prompt return proves the
// sleep is context-aware.
func TestClientCancelDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	c, err := client.New(client.Config{BaseURL: ts.URL,
		Retry: client.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Minute}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Land the cancel mid-backoff: after the first 429, the client is
		// asleep for the full 30s hint unless cancellation interrupts it.
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Wait(ctx, "whatever")
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait returned %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("canceled Wait took %v to return — the backoff sleep ignored the context", elapsed)
	}
}

// TestClientRotatesOnStandby: a 503 carrying X-Router-Role: standby is a
// redirection, not overload — the client must hop to the next endpoint
// immediately and succeed without burning its retry budget.
func TestClientRotatesOnStandby(t *testing.T) {
	var standbyHits, primaryHits atomic.Int64
	standby := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		standbyHits.Add(1)
		w.Header().Set("X-Router-Role", "standby")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer standby.Close()
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		primaryHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"id":"j1","status":"running"}`))
	}))
	defer primary.Close()

	// The standby is listed first, so the first request must hop.
	c, err := client.New(client.Config{Endpoints: []string{standby.URL, primary.URL},
		Retry: client.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	st, err := c.Status(testCtx(t), "j1")
	if err != nil {
		t.Fatalf("Status through standby hop: %v", err)
	}
	if st.Status != "running" {
		t.Fatalf("status = %q, want running", st.Status)
	}
	// MaxAttempts is 2 and the hop is free: one standby hit, one primary
	// hit, no backoff sleep (the Retry-After was 1s — far above the
	// observed latency if honoured).
	if took := time.Since(start); took > 500*time.Millisecond {
		t.Fatalf("standby hop took %v — it backed off instead of rotating", took)
	}
	if got := standbyHits.Load(); got != 1 {
		t.Fatalf("standby hit %d times, want 1", got)
	}
	if got := primaryHits.Load(); got != 1 {
		t.Fatalf("primary hit %d times, want 1", got)
	}

	// Stickiness: the next call goes straight to the endpoint that worked.
	if _, err := c.Status(testCtx(t), "j1"); err != nil {
		t.Fatal(err)
	}
	if got := standbyHits.Load(); got != 1 {
		t.Fatalf("second call hit the standby again (%d hits) — rotation is not sticky", got)
	}
}

// TestClientRotatesOnTransportFailure: a dead endpoint (connection
// refused) rotates to the next one on the retried attempt.
func TestClientRotatesOnTransportFailure(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listens here any more

	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"id":"j2","status":"done"}`))
	}))
	defer live.Close()

	c, err := client.New(client.Config{Endpoints: []string{deadURL, live.URL},
		Retry: client.RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(testCtx(t), "j2")
	if err != nil {
		t.Fatalf("Status after dead endpoint: %v", err)
	}
	if st.Status != "done" {
		t.Fatalf("status = %q, want done", st.Status)
	}
}

// TestClientAllStandby: a full circle of standbys (both routers
// mid-promotion) degrades to the normal 503 backoff and eventually errors
// out rather than spinning.
func TestClientAllStandby(t *testing.T) {
	mk := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("X-Router-Role", "standby")
			w.WriteHeader(http.StatusServiceUnavailable)
		}))
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	c, err := client.New(client.Config{Endpoints: []string{a.URL, b.URL},
		Retry: client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Status(testCtx(t), "j3"); err == nil {
		t.Fatal("Status against an all-standby pair should fail after the retry budget")
	}
}
