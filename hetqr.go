// Package hetqr is a tiled QR decomposition library for heterogeneous
// CPU/GPU systems, reproducing Kim & Park, "Tiled QR Decomposition and Its
// Optimization on CPU and GPU Computing System" (ICPP 2013).
//
// The library has two halves that share one algorithmic core:
//
//   - Numerics. Factor and Solve run the real tiled QR algorithm (GEQRT /
//     UNMQR / TSQRT / TSMQR tile kernels with compact-WY block reflectors)
//     in parallel on the host, with pluggable elimination trees. The
//     resulting Factorization exposes R, implicit and explicit Q, and
//     linear / least-squares solves.
//
//   - Scheduling. Schedule applies the paper's three optimizations — main
//     computing device selection (Algorithm 2), device-count optimization
//     via the Top+Tcomm tradeoff (Algorithm 3), and guide-array tile
//     distribution (Algorithm 4) — to a modelled heterogeneous platform,
//     and Simulate executes the resulting plan on a discrete-event
//     simulator calibrated to the paper's measurements. PaperPlatform
//     models the evaluation machine (i7-3820 + GTX580 + 2×GTX680).
//
// Quick start:
//
//	a := hetqr.RandomMatrix(1, 512, 512)
//	f, err := hetqr.Factor(a, hetqr.Options{TileSize: 16})
//	if err != nil { ... }
//	x, err := f.Solve(b)       // A·x = b
//	q := f.FormQ(false)        // thin explicit Q
//
//	plat := hetqr.PaperPlatform()
//	plan := hetqr.Schedule(plat, 3200, 3200, 16)
//	res := hetqr.Simulate(plat, plan)
//	fmt.Printf("simulated %.2fs on %d device(s)\n", res.Seconds(), plan.P)
package hetqr

import (
	"context"
	"net/http"

	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tiled"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Matrix is a dense row-major float64 matrix.
type Matrix = matrix.Matrix

// Factorization is a completed tiled QR decomposition: R in place,
// Q implicit in the stored reflectors, with application and solve methods.
type Factorization = tiled.Factorization

// Options configures Factor; see the runtime package for field semantics.
type Options = runtime.Options

// Tree orders the eliminations within a panel.
type Tree = tiled.Tree

// Platform describes a heterogeneous machine: device models plus
// interconnect.
type Platform = device.Platform

// DeviceProfile is one device's calibrated performance model.
type DeviceProfile = device.Profile

// Plan is a complete scheduling decision (main device, participant count,
// guide array, column distribution).
type Plan = sched.Plan

// SimResult reports a simulated execution (makespan, calculation and
// communication time, per-device figures).
type SimResult = sim.Result

// Recorder collects execution traces from Factor and Simulate.
type Recorder = trace.Recorder

// Metrics is a concurrency-safe metrics registry (counters, gauges,
// latency histograms). Pass one in Options.Metrics or to the *Observed
// functions to instrument the runtime, scheduler and simulator; a nil
// registry disables all instrumentation. See cmd/qrmon for the companion
// inspection tool.
type Metrics = metrics.Registry

// MetricsSnapshot is a point-in-time copy of a registry, serializable as
// JSON or a text table.
type MetricsSnapshot = metrics.Snapshot

// Updater maintains a QR factorization over a growing stack of observation
// rows (recursive least squares by QR updating); see NewUpdater.
type Updater = tiled.Updater

// ErrNonFinite marks a NaN or Inf where finite data was required: Factor
// pre-scans its input and fails fast with an error wrapping this sentinel,
// and the Options.Verify post-check uses it for corrupted outputs. Test
// with errors.Is.
var ErrNonFinite = runtime.ErrNonFinite

// FaultInjector is a deterministic (seeded) fault injector: pass one in
// Options.Faults to exercise the runtime's self-healing — contained kernel
// panics, retried transients, latency spikes and worker drops. See
// NewFaultInjector.
type FaultInjector = fault.Injector

// FaultConfig configures a FaultInjector; the zero value injects nothing.
type FaultConfig = fault.Config

// KernelPanicError is the typed error a panicking kernel is contained
// into, carrying the operation, step and worker identity.
type KernelPanicError = fault.KernelPanicError

// RetryPolicy bounds the runtime's task-level retries of injected
// transient faults (Options.Retry): capped exponential backoff with
// jitter, per-operation attempt cap, per-factorization budget.
type RetryPolicy = fault.RetryPolicy

// NewFaultInjector builds a deterministic fault injector from cfg.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return fault.New(cfg) }

// IsRetryable reports whether an error is a fault-layer failure worth
// retrying at the job level (transient, contained panic, lost device,
// exhausted retry budget).
func IsRetryable(err error) bool { return fault.IsRetryable(err) }

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix { return matrix.New(r, c) }

// MatrixFromRows builds a matrix from row slices.
func MatrixFromRows(rows [][]float64) *Matrix { return matrix.FromRows(rows) }

// RandomMatrix returns an r×c matrix of uniform random entries in [-1, 1),
// the paper's evaluation workload, generated reproducibly from seed.
func RandomMatrix(seed int64, r, c int) *Matrix { return workload.Uniform(seed, r, c) }

// Factor computes the tiled QR factorization of a on the host CPU runtime.
// The input matrix is not modified.
func Factor(a *Matrix, opts Options) (*Factorization, error) {
	return runtime.Factor(a, opts)
}

// FactorContext is Factor with cancellation and deadlines: the runtime
// checks ctx at every task-dispatch point and, once it has fired, stops
// dispatching kernels and returns an error wrapping ctx.Err() (test with
// errors.Is against context.Canceled or context.DeadlineExceeded). Factor
// is FactorContext with context.Background().
func FactorContext(ctx context.Context, a *Matrix, opts Options) (*Factorization, error) {
	return runtime.FactorContext(ctx, a, opts)
}

// Solve factors a and solves the system A·x = b appropriate to its shape:
// the exact solution for square A, the least-squares solution for tall A,
// and the minimum-norm solution for wide A.
func Solve(a *Matrix, b []float64, opts Options) ([]float64, error) {
	if a.Rows < a.Cols {
		if err := (&opts).Normalize(); err != nil {
			return nil, err
		}
		return tiled.WideSolve(a, b, opts.TileSize, opts.Tree)
	}
	f, err := runtime.Factor(a, opts)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// TreeByName resolves an elimination-tree name: "flat-ts" (the paper's
// order, default), "flat-tt", "binary-tt" or "greedy-tt".
func TreeByName(name string) (Tree, error) { return tiled.TreeByName(name) }

// NewUpdater starts an empty streaming least-squares factorization with n
// unknowns (tile size tunes the internal kernels; 16 is a good default).
func NewUpdater(n, tile int) *Updater { return tiled.NewUpdater(n, tile) }

// PaperPlatform returns the paper's evaluation machine (Table II): an
// Intel i7-3820, one GTX580 and two GTX680s on PCI express.
func PaperPlatform() *Platform { return device.PaperPlatform() }

// Schedule runs the paper's full optimization pipeline for an m×n matrix
// with tile size b on the platform: Algorithm 2 (main device), Algorithm 3
// (device count) and Algorithm 4 (guide-array distribution).
func Schedule(pl *Platform, m, n, b int) *Plan {
	return sched.BuildPlan(pl, sched.NewProblem(m, n, b))
}

// Simulate executes a plan on the discrete-event simulator and reports the
// resulting timing breakdown.
func Simulate(pl *Platform, plan *Plan) SimResult {
	return sim.Run(sim.Config{Platform: pl, Plan: plan})
}

// SimulateTraced is Simulate with phase-level trace recording.
func SimulateTraced(pl *Platform, plan *Plan, rec *Recorder) SimResult {
	return sim.Run(sim.Config{Platform: pl, Plan: plan, Recorder: rec})
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// MetricsHandler returns an http.Handler serving the registry's snapshot
// as JSON (or a text table with ?format=table) — the /metrics endpoint of
// cmd/qrmon, reusable in any server embedding the library.
func MetricsHandler(reg *Metrics) http.Handler { return metrics.Handler(reg) }

// ScheduleObserved is Schedule with decision metrics: the registry
// receives the sched.* metrics recording why Algorithms 2–4 chose the
// main device, the device count and the guide ratios.
func ScheduleObserved(pl *Platform, m, n, b int, reg *Metrics) *Plan {
	return sched.BuildPlanObserved(pl, sched.NewProblem(m, n, b), reg)
}

// SimulateObserved is Simulate with metrics instrumentation: the registry
// receives the sim.* metrics (per-device busy/communication time,
// transfer counts, makespan distribution).
func SimulateObserved(pl *Platform, plan *Plan, reg *Metrics) SimResult {
	return sim.Run(sim.Config{Platform: pl, Plan: plan, Metrics: reg})
}
