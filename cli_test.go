package hetqr

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// CLI smoke tests: each command builds and completes a minimal invocation
// with sane output. Skipped under -short (they shell out to the Go tool).
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIQrfactor(t *testing.T) {
	out := runCLI(t, "./cmd/qrfactor", "-n", "64", "-solve")
	if !strings.Contains(out, "residual") || !strings.Contains(out, "solve error") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCLIQrfactorOutOfCore(t *testing.T) {
	out := runCLI(t, "./cmd/qrfactor", "-n", "64", "-ooc", "5")
	if !strings.Contains(out, "out of core") || !strings.Contains(out, "cache") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCLIQrfactorMatrixMarketRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "a.mtx")
	if err := WriteMatrixMarketFile(in, RandomMatrix(5, 32, 32)); err != nil {
		t.Fatal(err)
	}
	rOut := filepath.Join(dir, "r.mtx")
	out := runCLI(t, "./cmd/qrfactor", "-in", in, "-out-r", rOut)
	if !strings.Contains(out, "wrote R") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	r, err := ReadMatrixMarketFile(rOut)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows != 32 || r.Cols != 32 {
		t.Fatalf("R is %dx%d", r.Rows, r.Cols)
	}
}

func TestCLIQrsim(t *testing.T) {
	out := runCLI(t, "./cmd/qrsim", "-size", "640")
	for _, want := range []string{"main device : GTX580", "makespan", "guide array"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCLIQrsimJSON(t *testing.T) {
	out := runCLI(t, "./cmd/qrsim", "-size", "320", "-json")
	if !strings.Contains(out, "\"plan\"") || !strings.Contains(out, "\"makespanUS\"") {
		t.Fatalf("unexpected JSON:\n%s", out)
	}
}

func TestCLIQrbench(t *testing.T) {
	out := runCLI(t, "./cmd/qrbench", "-exp", "table1")
	if !strings.Contains(out, "Triangulation") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	list := runCLI(t, "./cmd/qrbench", "-list")
	for _, id := range []string{"fig4", "fig10", "table3", "ext-fidelity"} {
		if !strings.Contains(list, id) {
			t.Fatalf("missing %s in -list:\n%s", id, list)
		}
	}
}

func TestCLIQrcalib(t *testing.T) {
	out := runCLI(t, "./cmd/qrcalib", "-reps", "3")
	if !strings.Contains(out, "fitted model") || !strings.Contains(out, "update throughput") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCLIQrfactorMetrics(t *testing.T) {
	out := runCLI(t, "./cmd/qrfactor", "-n", "64", "-metrics")
	for _, want := range []string{
		"metrics snapshot",
		"runtime.ops{step=T}",
		"runtime.ops{step=UE}",
		"runtime.op_us{step=UE}",
		"runtime.worker_busy_us{worker=worker-0}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// 64² at tile 16 is a 4×4 grid; the flat-TS DAG has Σ_k 1 + 2(M−k−1)
	// + (M−k−1)² = 16 + 9 + 4 + 1 = 30 kernels, echoed both by the "ops"
	// line and the metrics op-count cross-check.
	if !strings.Contains(out, "ops         30 tile kernels") ||
		!strings.Contains(out, "metrics snapshot (30 tile kernels") {
		t.Fatalf("op-count cross-check missing:\n%s", out)
	}
}

func TestCLIQrsimMetricsAndCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "events.csv")
	out := runCLI(t, "./cmd/qrsim", "-size", "640", "-metrics", "-csv-out", csvPath)
	for _, want := range []string{"sim.runs", "sched.plans", "sim.top_us", "sim.tcomm_us", "wrote event CSV"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "label,step,worker,start_us,dur_us\n") {
		t.Fatalf("bad CSV header:\n%.100s", data)
	}
}

func TestCLIQrmon(t *testing.T) {
	out := runCLI(t, "./cmd/qrmon", "-mode", "both", "-n", "64", "-size", "640")
	for _, want := range []string{
		"runtime.ops{step=T}", // from the factor half
		"sim.runs",            // from the sim half
		"sched.plans",         // from the scheduling decision
		"histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	js := runCLI(t, "./cmd/qrmon", "-mode", "sim", "-size", "320", "-json")
	if !strings.Contains(js, "\"counters\"") || !strings.Contains(js, "\"sim.runs\": 1") {
		t.Fatalf("unexpected JSON:\n%s", js)
	}
}

// TestCLIQrmonServes boots the HTTP surface on an ephemeral port and
// checks that the same registry is reachable as JSON (/metrics), through
// expvar (/debug/vars) and via the liveness probe.
func TestCLIQrmonServes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	cmd := exec.Command("go", "run", "./cmd/qrmon", "-mode", "sim", "-size", "320", "-http", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
		_ = cmd.Wait()
	}()

	// Scan stdout for the resolved listen address.
	var base string
	sc := bufio.NewScanner(stdout)
	deadline := time.After(60 * time.Second)
	found := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "serving on http://") {
				addr := strings.TrimPrefix(line, "serving on ")
				found <- strings.Fields(addr)[0]
				return
			}
		}
	}()
	select {
	case base = <-found:
	case <-deadline:
		t.Fatal("qrmon never reported its listen address")
	}

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if got := get("/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("healthz: %q", got)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(get("/metrics")), &snap); err != nil {
		t.Fatalf("/metrics is not snapshot JSON: %v", err)
	}
	if snap.Counters["sim.runs"] != 1 {
		t.Fatalf("/metrics sim.runs = %d", snap.Counters["sim.runs"])
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	hq, ok := vars["hetqr"]
	if !ok {
		t.Fatal("/debug/vars missing hetqr registry")
	}
	var viaExpvar struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(hq, &viaExpvar); err != nil {
		t.Fatalf("expvar hetqr entry: %v", err)
	}
	if viaExpvar.Counters["sim.runs"] != snap.Counters["sim.runs"] {
		t.Fatal("expvar and /metrics disagree on the same registry")
	}
	if got := get("/metrics?format=table"); !strings.Contains(got, "sim.runs") {
		t.Fatalf("table format: %q", got)
	}
}

// runCLIExpectError runs a command expecting a non-zero exit, returning
// the combined output for hint assertions.
func runCLIExpectError(t *testing.T, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go run %v: expected a non-zero exit, got:\n%s", args, out)
	}
	return string(out)
}

// TestCLIUsageHints: unknown enum-flag values exit non-zero with a
// one-line hint listing the valid values, instead of a panic or a silent
// fallback to the default.
func TestCLIUsageHints(t *testing.T) {
	out := runCLIExpectError(t, "./cmd/qrfactor", "-n", "32", "-tree", "bogus")
	if !strings.Contains(out, "unknown elimination tree") || !strings.Contains(out, "flat-ts") {
		t.Fatalf("qrfactor -tree hint missing:\n%s", out)
	}
	out = runCLIExpectError(t, "./cmd/qrsim", "-size", "320", "-dist", "bogus")
	if !strings.Contains(out, "unknown -dist") || !strings.Contains(out, "guide, cores, even") {
		t.Fatalf("qrsim -dist hint missing:\n%s", out)
	}
	out = runCLIExpectError(t, "./cmd/qrsim", "-size", "320", "-main", "bogus")
	if !strings.Contains(out, "no device named") || !strings.Contains(out, "GTX580") {
		t.Fatalf("qrsim -main hint missing:\n%s", out)
	}
	out = runCLIExpectError(t, "./cmd/qrsim", "-size", "320", "-gpus", "7")
	if !strings.Contains(out, "exceeds the platform") {
		t.Fatalf("qrsim -gpus hint missing:\n%s", out)
	}
	out = runCLIExpectError(t, "./cmd/qrmon", "-mode", "bogus")
	if !strings.Contains(out, "unknown -mode") || !strings.Contains(out, "factor, sim, both") {
		t.Fatalf("qrmon -mode hint missing:\n%s", out)
	}
}

// TestCLIQrserveSelftest runs the full ≥200-job closed-loop acceptance
// gate: batching (mean batch size > 1), admission control (≥1 rejection
// under the saturating burst), a deadline-exceeded job, a lossless drain,
// and bit-identical results versus direct Factor.
func TestCLIQrserveSelftest(t *testing.T) {
	out := runCLI(t, "./cmd/qrserve", "-selftest", "-jobs", "200", "-clients", "8")
	if !strings.Contains(out, "selftest ok") {
		t.Fatalf("selftest did not pass:\n%s", out)
	}
	for _, want := range []string{"closed loop   200 jobs", "0 mismatches", "deadline      exceeded as expected: true", "0 lost"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
