package hetqr

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// CLI smoke tests: each command builds and completes a minimal invocation
// with sane output. Skipped under -short (they shell out to the Go tool).
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIQrfactor(t *testing.T) {
	out := runCLI(t, "./cmd/qrfactor", "-n", "64", "-solve")
	if !strings.Contains(out, "residual") || !strings.Contains(out, "solve error") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCLIQrfactorOutOfCore(t *testing.T) {
	out := runCLI(t, "./cmd/qrfactor", "-n", "64", "-ooc", "5")
	if !strings.Contains(out, "out of core") || !strings.Contains(out, "cache") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCLIQrfactorMatrixMarketRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "a.mtx")
	if err := WriteMatrixMarketFile(in, RandomMatrix(5, 32, 32)); err != nil {
		t.Fatal(err)
	}
	rOut := filepath.Join(dir, "r.mtx")
	out := runCLI(t, "./cmd/qrfactor", "-in", in, "-out-r", rOut)
	if !strings.Contains(out, "wrote R") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	r, err := ReadMatrixMarketFile(rOut)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows != 32 || r.Cols != 32 {
		t.Fatalf("R is %dx%d", r.Rows, r.Cols)
	}
}

func TestCLIQrsim(t *testing.T) {
	out := runCLI(t, "./cmd/qrsim", "-size", "640")
	for _, want := range []string{"main device : GTX580", "makespan", "guide array"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCLIQrsimJSON(t *testing.T) {
	out := runCLI(t, "./cmd/qrsim", "-size", "320", "-json")
	if !strings.Contains(out, "\"plan\"") || !strings.Contains(out, "\"makespanUS\"") {
		t.Fatalf("unexpected JSON:\n%s", out)
	}
}

func TestCLIQrbench(t *testing.T) {
	out := runCLI(t, "./cmd/qrbench", "-exp", "table1")
	if !strings.Contains(out, "Triangulation") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	list := runCLI(t, "./cmd/qrbench", "-list")
	for _, id := range []string{"fig4", "fig10", "table3", "ext-fidelity"} {
		if !strings.Contains(list, id) {
			t.Fatalf("missing %s in -list:\n%s", id, list)
		}
	}
}

func TestCLIQrcalib(t *testing.T) {
	out := runCLI(t, "./cmd/qrcalib", "-reps", "3")
	if !strings.Contains(out, "fitted model") || !strings.Contains(out, "update throughput") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}
