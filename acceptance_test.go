package hetqr

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// TestAcceptanceEndToEnd walks the whole system the way a user adopting the
// library would: generate data, factor it in parallel, verify the algebra,
// solve a system, round-trip the factors through MatrixMarket, schedule and
// simulate the same problem on the modelled heterogeneous platform, execute
// the schedule against real arithmetic with the placement engine, and
// finally factor out of core — asserting consistency at every hand-off.
func TestAcceptanceEndToEnd(t *testing.T) {
	const n = 128
	a := RandomMatrix(2024, n, n)

	// 1. Parallel factorization + algebraic verification.
	f, err := Factor(a, Options{TileSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res := f.Residual(a); res > 1e-10 {
		t.Fatalf("residual %g", res)
	}
	q := f.FormQ(false)
	r := f.R()

	// 2. Solve against a known solution.
	xWant := make([]float64, n)
	for i := range xWant {
		xWant[i] = math.Sin(float64(i))
	}
	xm := NewMatrix(n, 1)
	xm.SetCol(0, xWant)
	b := matrix.Mul(a, xm).Col(0)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xWant[i]) > 1e-7 {
			t.Fatalf("x[%d] off by %g", i, x[i]-xWant[i])
		}
	}

	// 3. MatrixMarket round trip of both factors.
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, q); err != nil {
		t.Fatal(err)
	}
	q2, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.Equal(q) {
		t.Fatal("Q did not round-trip")
	}

	// 4. Schedule the same shape on the paper platform and simulate it.
	plat := PaperPlatform()
	plan := Schedule(plat, n, n, 16)
	sim := Simulate(plat, plan)
	if sim.Seconds() <= 0 {
		t.Fatal("simulation produced no time")
	}
	if plat.Devices[plan.Main].Kind == "cpu" {
		t.Fatal("scheduler picked the CPU as main")
	}

	// 5. Execute the schedule against real arithmetic.
	hf, stats, err := core.Factor(a, core.Config{Platform: plat, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if hres := hf.Residual(a); hres > 1e-10 {
		t.Fatalf("heterogeneous residual %g", hres)
	}
	total := 0
	for _, c := range stats.OpsPerDevice {
		total += c
	}
	if total != len(hf.Journal) {
		t.Fatalf("placement lost ops: %d of %d", total, len(hf.Journal))
	}
	// The heterogeneous execution computes the same factorization.
	if d := hf.R().MaxAbsDiff(r); d > 1e-12 {
		t.Fatalf("heterogeneous R differs by %g", d)
	}

	// 6. Out-of-core factorization agrees bitwise with the in-memory R.
	oocF, err := FactorOutOfCore(a, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	oocR, err := oocF.R()
	if err != nil {
		t.Fatal(err)
	}
	if !oocR.Equal(r) {
		t.Fatal("out-of-core R differs from in-memory R")
	}

	// 7. Rank analysis agrees with the construction.
	if rank := FactorPivoted(a).Rank(0); rank != n {
		t.Fatalf("random matrix rank = %d, want %d", rank, n)
	}
}
