package hetqr

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

func TestPublicFactorAndSolve(t *testing.T) {
	a := RandomMatrix(1, 128, 128)
	f, err := Factor(a, Options{TileSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res := f.Residual(a); res > 1e-10 {
		t.Fatalf("residual %g", res)
	}

	xWant := make([]float64, 128)
	for i := range xWant {
		xWant[i] = float64(i%7) - 3
	}
	xm := NewMatrix(128, 1)
	xm.SetCol(0, xWant)
	b := matrix.Mul(a, xm).Col(0)
	x, err := Solve(a, b, Options{TileSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xWant[i]) > 1e-7 {
			t.Fatalf("x[%d] = %v want %v", i, x[i], xWant[i])
		}
	}
}

func TestPublicSchedulePipeline(t *testing.T) {
	pl := PaperPlatform()
	plan := Schedule(pl, 3200, 3200, 16)
	if pl.Devices[plan.Main].Name != "GTX580" {
		t.Fatalf("main = %s, want GTX580", pl.Devices[plan.Main].Name)
	}
	res := Simulate(pl, plan)
	if res.Seconds() <= 0 {
		t.Fatal("zero makespan")
	}
	if res.CommFraction() <= 0 || res.CommFraction() >= 1 {
		t.Fatalf("comm fraction %v out of range", res.CommFraction())
	}
}

func TestPublicTreeByName(t *testing.T) {
	if _, err := TreeByName("binary-tt"); err != nil {
		t.Fatal(err)
	}
	if _, err := TreeByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestMatrixConstructors(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 1) != 4 {
		t.Fatal("MatrixFromRows wrong")
	}
	if r := RandomMatrix(5, 3, 4); r.Rows != 3 || r.Cols != 4 {
		t.Fatal("RandomMatrix shape wrong")
	}
	// Reproducibility.
	if !RandomMatrix(5, 3, 4).Equal(RandomMatrix(5, 3, 4)) {
		t.Fatal("RandomMatrix must be deterministic per seed")
	}
}

func TestSolveWideMinNorm(t *testing.T) {
	m, n := 8, 24
	a := RandomMatrix(9, m, n)
	xAny := make([]float64, n)
	for i := range xAny {
		xAny[i] = float64(i%5) - 2
	}
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			b[i] += a.At(i, j) * xAny[j]
		}
	}
	x, err := Solve(a, b, Options{TileSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a.At(i, j) * x[j]
		}
		if math.Abs(s-b[i]) > 1e-9 {
			t.Fatalf("row %d residual %g", i, s-b[i])
		}
	}
	// Minimum norm: no longer than the constructed solution.
	var nx, na float64
	for j := 0; j < n; j++ {
		nx += x[j] * x[j]
		na += xAny[j] * xAny[j]
	}
	if nx > na+1e-9 {
		t.Fatalf("‖x‖² = %v exceeds known solution %v", nx, na)
	}
}

func TestSimulateTraced(t *testing.T) {
	pl := PaperPlatform()
	plan := Schedule(pl, 640, 640, 16)
	rec := &Recorder{}
	res := SimulateTraced(pl, plan, rec)
	if res.Seconds() <= 0 {
		t.Fatal("zero makespan")
	}
	if rec.Summarize().NumEvents == 0 {
		t.Fatal("no trace events")
	}
}

func TestPublicUpdater(t *testing.T) {
	u := NewUpdater(4, 2)
	w := MatrixFromRows([][]float64{
		{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1},
	})
	if err := u.Append(w, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	x, err := u.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if math.Abs(x[i]-want) > 1e-12 {
			t.Fatalf("x[%d] = %v", i, x[i])
		}
	}
}
