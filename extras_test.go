package hetqr

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/matrix"
)

func TestFactorPivotedRankDetection(t *testing.T) {
	// Build a rank-2 matrix from two outer products.
	u := RandomMatrix(1, 12, 2)
	v := RandomMatrix(2, 2, 9)
	a := matrix.Mul(u, v)
	p := FactorPivoted(a)
	if rank := p.Rank(0); rank != 2 {
		t.Fatalf("rank = %d, want 2", rank)
	}
	// A·P = Q·R reconstruction.
	ap := matrix.Mul(a, p.PermutationMatrix())
	qr := matrix.Mul(p.Q(), p.R())
	if d := ap.MaxAbsDiff(qr); d > 1e-10 {
		t.Fatalf("‖AP − QR‖ = %g", d)
	}
}

func TestMatrixMarketRoundTripPublic(t *testing.T) {
	m := RandomMatrix(3, 6, 4)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip mismatch")
	}
	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := WriteMatrixMarketFile(path, m); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadMatrixMarketFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(m) {
		t.Fatal("file round trip mismatch")
	}
}

func TestFactorOutOfCorePublic(t *testing.T) {
	a := RandomMatrix(4, 96, 96)
	f, err := FactorOutOfCore(a, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	// QᵀA == R end to end.
	c := a.Clone()
	if err := f.ApplyQT(c); err != nil {
		t.Fatal(err)
	}
	r, err := f.R()
	if err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(r); d > 1e-10 {
		t.Fatalf("QᵀA != R: %g", d)
	}
	if f.TileStats.Peak > 8 {
		t.Fatalf("cache exceeded: peak %d", f.TileStats.Peak)
	}
}

func TestSaveLoadFactorizationPublic(t *testing.T) {
	a := RandomMatrix(11, 48, 48)
	f, err := Factor(a, Options{TileSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveFactorization(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFactorization(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res := g.Residual(a); res > 1e-10 {
		t.Fatalf("loaded residual %g", res)
	}
}
