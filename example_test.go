package hetqr_test

import (
	"fmt"

	hetqr "repro"
)

// Example factors a small matrix and verifies the decomposition — the
// minimal end-to-end use of the numeric half of the library.
func Example() {
	a := hetqr.MatrixFromRows([][]float64{
		{4, 1, 2},
		{2, 3, 1},
		{1, 2, 5},
	})
	f, err := hetqr.Factor(a, hetqr.Options{TileSize: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("residual below 1e-12: %v\n", f.Residual(a) < 1e-12)
	r := f.R()
	fmt.Printf("R is upper triangular: %v\n", r.At(1, 0) == 0 && r.At(2, 0) == 0 && r.At(2, 1) == 0)
	// Output:
	// residual below 1e-12: true
	// R is upper triangular: true
}

// ExampleSolve solves a square linear system via the tiled factorization.
func ExampleSolve() {
	a := hetqr.MatrixFromRows([][]float64{
		{2, 0, 0},
		{0, 4, 0},
		{0, 0, 8},
	})
	x, err := hetqr.Solve(a, []float64{2, 8, 32}, hetqr.Options{TileSize: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("x = [%.0f %.0f %.0f]\n", x[0], x[1], x[2])
	// Output:
	// x = [1 2 4]
}

// ExampleSchedule runs the paper's scheduling pipeline on the modelled
// evaluation machine: the GTX580 becomes the main computing device and the
// guide array interleaves the participants by update throughput.
func ExampleSchedule() {
	plat := hetqr.PaperPlatform()
	plan := hetqr.Schedule(plat, 3200, 3200, 16)
	fmt.Printf("main device: %s\n", plat.Devices[plan.Main].Name)
	fmt.Printf("participants: %d\n", plan.P)
	fmt.Printf("ratios: %v\n", plan.Ratios)
	// Output:
	// main device: GTX580
	// participants: 3
	// ratios: [5 8 8]
}

// ExampleSimulate prices a schedule on the discrete-event simulator.
func ExampleSimulate() {
	plat := hetqr.PaperPlatform()
	plan := hetqr.Schedule(plat, 1600, 1600, 16)
	res := hetqr.Simulate(plat, plan)
	fmt.Printf("positive makespan: %v\n", res.Seconds() > 0)
	fmt.Printf("communication share below 50%%: %v\n", res.CommFraction() < 0.5)
	// Output:
	// positive makespan: true
	// communication share below 50%: true
}
