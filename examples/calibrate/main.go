// Calibrate: build a device performance model from raw Fig. 4-style
// measurements and put it through the paper's scheduling pipeline — the
// workflow a user follows to apply the optimizations to their own hardware.
//
// The "measurements" here are synthesized from a hidden reference profile
// with noise, standing in for the microbenchmark numbers a user would
// collect on a real accelerator. The fit is a least-squares solve performed
// by this library's own QR solver.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/device"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)

	// 1. "Measure": single-tile times for each step at several tile sizes,
	// with 3% noise — what a user's microbenchmark would produce.
	hidden := device.GTX580()
	rng := rand.New(rand.NewSource(42))
	samples := device.SampleProfile(hidden, []int{4, 8, 12, 16, 20, 24, 28})
	for i := range samples {
		samples[i].US *= 1 + 0.03*rng.NormFloat64()
	}
	fmt.Printf("collected %d single-tile measurements (4 step classes × 7 tile sizes)\n", len(samples))

	// 2. Fit the timing model t(op, b) = launch + a·b³ by least squares.
	fitted, err := device.FitProfile("MyAccelerator", "gpu", hidden.Cores, hidden.Slots,
		hidden.BulkScale, hidden.PanelFused, hidden.PanelChainScale, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted model: launch %.1f µs;", fitted.LaunchUS)
	for c := device.Class(0); c < device.NumClasses; c++ {
		fmt.Printf(" %v(16)=%.0fµs", c, fitted.SingleTileUS(c, 16))
	}
	fmt.Println()

	// 3. Drop the fitted device into a platform next to the stock models
	// and run the full pipeline.
	plat := &device.Platform{
		Devices:   []*device.Profile{device.CPUi7(), fitted, device.GTX680(), device.GTX680()},
		Link:      device.PCIe(),
		ElemBytes: 4,
	}
	if err := plat.Validate(); err != nil {
		log.Fatal(err)
	}
	prob := sched.NewProblem(3200, 3200, 16)
	plan := sched.BuildPlan(plat, prob)
	res := sim.Run(sim.Config{Platform: plat, Plan: plan})
	fmt.Printf("\nscheduling with the fitted device:\n")
	fmt.Printf("  main: %s   participants: %d   ratios: %v\n",
		plat.Devices[plan.Main].Name, plan.P, plan.Ratios)
	fmt.Printf("  simulated 3200x3200: %.3f s (%.1f%% communication)\n",
		res.Seconds(), 100*res.CommFraction())

	// 4. Sanity: the fitted device's decisions match the hidden truth.
	truth := device.PaperPlatform()
	truthPlan := sched.BuildPlan(truth, prob)
	if plat.Devices[plan.Main].Name == "MyAccelerator" &&
		truth.Devices[truthPlan.Main].Name == "GTX580" {
		fmt.Println("  (the fitted device was selected as main, matching the hidden GTX580)")
	} else {
		log.Fatalf("fitted decisions diverged: main=%s", plat.Devices[plan.Main].Name)
	}
}
