// Autotune: sweep tile sizes and elimination trees on the real host
// runtime and report which configuration factors fastest — the knob the
// paper fixes at 16×16 tiles and a flat elimination order, and the
// dimension Song et al. (the paper's related work [7]) tune automatically.
package main

import (
	"fmt"
	"log"
	"time"

	hetqr "repro"
)

func main() {
	log.SetFlags(0)
	const n = 384
	a := hetqr.RandomMatrix(3, n, n)

	type result struct {
		tile    int
		tree    string
		elapsed time.Duration
	}
	var best *result

	fmt.Printf("autotuning %dx%d tiled QR on the host runtime\n\n", n, n)
	fmt.Println("tile  tree        time        residual")
	for _, tile := range []int{8, 16, 32, 64} {
		for _, treeName := range []string{"flat-ts", "binary-tt"} {
			tree, err := hetqr.TreeByName(treeName)
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			f, err := hetqr.Factor(a, hetqr.Options{TileSize: tile, Tree: tree})
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(start)
			res := f.Residual(a)
			fmt.Printf("%4d  %-10s  %-10v  %.1e\n", tile, treeName, elapsed.Round(time.Microsecond), res)
			if res > 1e-10 {
				log.Fatalf("configuration tile=%d tree=%s lost accuracy", tile, treeName)
			}
			if best == nil || elapsed < best.elapsed {
				best = &result{tile, treeName, elapsed}
			}
		}
	}
	fmt.Printf("\nbest: tile %d with %s (%v)\n", best.tile, best.tree, best.elapsed.Round(time.Microsecond))
	fmt.Println("(the paper fixes 16x16 tiles for all devices and balances load by")
	fmt.Println(" tile count instead — see internal/sched's guide array)")
}
