// Quickstart: factor a random matrix with the tiled QR library, verify the
// factorization, and solve a linear system.
package main

import (
	"fmt"
	"log"

	hetqr "repro"
)

func main() {
	log.SetFlags(0)

	// A 256×256 random matrix — the paper's evaluation workload.
	const n = 256
	a := hetqr.RandomMatrix(7, n, n)

	// Tiled QR with 16×16 tiles (the paper's tile size) on all host cores.
	f, err := hetqr.Factor(a, hetqr.Options{TileSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factored %dx%d with %d tile kernels\n", n, n, len(f.Journal))
	fmt.Printf("reconstruction error ‖A − QR‖/‖A‖ = %.2e\n", f.Residual(a))

	// Solve A·x = b for a right-hand side with known solution x* = (1,…,1).
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i] += a.At(i, j) // Σ_j a_ij · 1
		}
	}
	x, err := f.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for _, v := range x {
		if d := v - 1; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	fmt.Printf("solved A·x = b: max |x_i − 1| = %.2e\n", worst)

	// The explicit orthogonal factor is available when needed.
	q := f.FormQ(false)
	fmt.Printf("explicit Q is %dx%d\n", q.Rows, q.Cols)
}
