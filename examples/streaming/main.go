// Streaming: recursive least squares by QR updating. Observation rows
// arrive in small batches (a sensor stream) and are folded into the
// factorization with the paper's TS elimination kernels — the model refits
// after every batch in O(k·n²), independent of the total history length,
// and no past rows are stored.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/matrix"
	"repro/internal/tiled"
)

func main() {
	log.SetFlags(0)

	// Hidden linear model with 8 features.
	const n = 8
	truth := []float64{3, -1, 0.5, 2, 0, -2.5, 1, 0.25}
	rng := rand.New(rand.NewSource(99))

	u := tiled.NewUpdater(n, 4)
	fmt.Println("batch  rows seen  max |coef error|  residual ‖b−Ax‖")
	for batch := 1; batch <= 8; batch++ {
		// A batch of 10 noisy observations.
		const k = 10
		w := matrix.New(k, n)
		rhs := make([]float64, k)
		for i := 0; i < k; i++ {
			var y float64
			for j := 0; j < n; j++ {
				v := rng.NormFloat64()
				w.Set(i, j, v)
				y += truth[j] * v
			}
			rhs[i] = y + 0.01*rng.NormFloat64()
		}
		if err := u.Append(w, rhs); err != nil {
			log.Fatal(err)
		}
		if u.Rows() < n {
			continue
		}
		x, err := u.Solve()
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for j := range x {
			if d := x[j] - truth[j]; d > worst {
				worst = d
			} else if -d > worst {
				worst = -d
			}
		}
		fmt.Printf("%5d  %9d  %16.5f  %16.5f\n", batch, u.Rows(), worst, u.ResidualNorm())
	}

	x, err := u.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal coefficients vs truth:")
	for j := range x {
		fmt.Printf("  x[%d] = %+8.4f   (true %+5.2f)\n", j, x[j], truth[j])
	}
}
