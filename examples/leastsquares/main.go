// Least squares: fit a polynomial to noisy samples with the tiled QR
// factorization — the "solving systems of linear equations ... widely used
// in data analysis" motivation from the paper's introduction.
//
// We sample y = 2 − x + 0.5·x² + 0.1·x³ + noise at 2,000 points and recover
// the coefficients from the 2000×4 Vandermonde system in the least-squares
// sense, which exercises the tall-and-skinny path of the factorization.
package main

import (
	"fmt"
	"log"
	"math/rand"

	hetqr "repro"
)

func main() {
	log.SetFlags(0)

	truth := []float64{2, -1, 0.5, 0.1}
	const (
		samples = 2000
		degree  = 3
		noise   = 0.05
	)
	rng := rand.New(rand.NewSource(11))

	// Vandermonde design matrix and noisy observations.
	a := hetqr.NewMatrix(samples, degree+1)
	b := make([]float64, samples)
	for i := 0; i < samples; i++ {
		x := 4*rng.Float64() - 2 // x ∈ [−2, 2)
		pow := 1.0
		y := 0.0
		for j := 0; j <= degree; j++ {
			a.Set(i, j, pow)
			y += truth[j] * pow
			pow *= x
		}
		b[i] = y + noise*rng.NormFloat64()
	}

	// Tall-and-skinny least squares: the tree-based elimination orders
	// (the paper's reference [6]) shine on this shape.
	tree, err := hetqr.TreeByName("greedy-tt")
	if err != nil {
		log.Fatal(err)
	}
	coef, err := hetqr.Solve(a, b, hetqr.Options{TileSize: 16, Tree: tree})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("coefficient  true    estimated")
	worst := 0.0
	for j, c := range coef {
		fmt.Printf("    x^%d      %+5.2f   %+8.4f\n", j, truth[j], c)
		if d := c - truth[j]; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	fmt.Printf("max coefficient error: %.4f (noise level %.2f over %d samples)\n",
		worst, noise, samples)
	if worst > 0.05 {
		log.Fatal("fit failed to recover the generating polynomial")
	}
}
