// Hetero: the paper's full pipeline on the modelled CPU + 3-GPU machine.
//
// For a sweep of matrix sizes this example runs Algorithm 2 (main device
// selection), Algorithm 3 (number-of-devices optimization) and Algorithm 4
// (guide-array distribution), prints the decision trail, and simulates the
// resulting execution — reproducing in miniature the tradeoffs behind the
// paper's Figures 5–6 and Table III.
package main

import (
	"fmt"

	hetqr "repro"
)

func main() {
	plat := hetqr.PaperPlatform()
	fmt.Println("platform:")
	for _, d := range plat.Devices {
		fmt.Printf("  %-12s %4d cores (%s)\n", d.Name, d.Cores, d.Kind)
	}
	fmt.Println()

	fmt.Println("size    main     p  guide array              simulated   comm%")
	for _, size := range []int{160, 480, 960, 1600, 3200, 6400} {
		plan := hetqr.Schedule(plat, size, size, 16)
		res := hetqr.Simulate(plat, plan)
		guide := fmt.Sprint(plan.Guide)
		if len(guide) > 24 {
			guide = guide[:21] + "..."
		}
		fmt.Printf("%-6d  %-7s  %d  %-24s %8.2f ms  %4.1f%%\n",
			size, plat.Devices[plan.Main].Name, plan.P, guide,
			res.MakespanUS/1000, 100*res.CommFraction())
	}

	fmt.Println()
	fmt.Println("the three scheduling decisions at 3200x3200:")
	plan := hetqr.Schedule(plat, 3200, 3200, 16)
	fmt.Printf("  1. main computing device (Alg. 2): %s — fast panels; the\n",
		plat.Devices[plan.Main].Name)
	fmt.Println("     GTX680s' higher update throughput is better spent on updates.")
	fmt.Printf("  2. number of devices (Alg. 3): p = %d; predicted T(p) in ms:", plan.P)
	for p, v := range plan.Predicted {
		fmt.Printf(" %d→%.1f", p+1, v/1000)
	}
	fmt.Println()
	fmt.Printf("  3. distribution guide array (Alg. 4): ratios %v → %v\n",
		plan.Ratios, plan.Guide)
	fmt.Println("     column i goes to guide[i mod len] (column 0 stays on main).")
}
