// Out-of-core: factor a matrix whose tiles live on disk through a bounded
// tile cache — the paper's future-work scenario ("a lack of memory problem
// can occur for very large matrix sizes"), scaled down so it runs in
// seconds.
//
// A 640×640 matrix (40×40 = 1,600 tiles of 16×16) streams through a cache
// of only 64 resident tiles (4% of the matrix), and the result is verified
// against the right-hand-side solve exactly like the in-memory paths.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/matrix"
	"repro/internal/ooc"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	const (
		n     = 640
		tile  = 16
		cache = 64
	)

	// Stage the matrix into a disk-backed tile store.
	store, err := ooc.NewDiskStore("", n/tile, n/tile, tile)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	a := workload.Uniform(21, n, n)
	layout, err := ooc.LoadDense(store, a, tile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: %dx%d = %d tiles on disk; cache: %d tiles (%.1f%% resident)\n",
		n, n, layout.Mt*layout.Nt, cache, 100*float64(cache)/float64(layout.Mt*layout.Nt))

	f, err := ooc.Factor(store, layout, ooc.Options{CacheTiles: cache})
	if err != nil {
		log.Fatal(err)
	}
	st := f.TileStats
	fmt.Printf("factored: %d cache hits, %d loads, %d evictions (%d written back), peak %d resident\n",
		st.Hits, st.Misses, st.Evictions, st.WriteBack, st.Peak)

	// Verify by solving A·x = b with x* = (1, …, 1): apply Qᵀ out of core,
	// then back-substitute on R.
	b := matrix.New(n, 1)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a.At(i, j)
		}
		b.Set(i, 0, s)
	}
	if err := f.ApplyQT(b); err != nil {
		log.Fatal(err)
	}
	r, err := f.R()
	if err != nil {
		log.Fatal(err)
	}
	x := b.Col(0)
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= r.At(i, j) * x[j]
		}
		x[i] /= r.At(i, i)
	}
	worst := 0.0
	for _, v := range x {
		if d := math.Abs(v - 1); d > worst {
			worst = d
		}
	}
	fmt.Printf("solved out of core: max |x_i − 1| = %.2e\n", worst)
	if worst > 1e-8 {
		log.Fatal("out-of-core solve lost accuracy")
	}
}
